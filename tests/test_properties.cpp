// Randomised property tests over the financial algebra and the engine.
//
// Each property is checked over a sweep of randomly generated
// configurations (seeded, so failures reproduce). These are the invariants
// DESIGN.md commits to:
//   * layer terms: monotone, 1-Lipschitz, bounded, share-linear;
//   * engine: portfolio additivity, trial-permutation invariance of the
//     loss distribution, share linearity, seed stability;
//   * metrics: coherence (monotone VaR, TVaR dominance, positive
//     homogeneity, translation equivariance) on random YLTs;
//   * serialization: random-table round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/serialize.hpp"
#include "finance/terms.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

finance::LayerTerms random_terms(Xoshiro256ss& rng, bool allow_franchise = true) {
  finance::LayerTerms terms;
  terms.occ_retention = sample_uniform(rng, 0.0, 500.0);
  terms.occ_limit = sample_uniform(rng, 50.0, 2'000.0);
  terms.agg_retention = sample_uniform(rng, 0.0, 300.0);
  terms.agg_limit = sample_uniform(rng, 100.0, 5'000.0);
  terms.share = sample_uniform(rng, 0.05, 1.0);
  if (allow_franchise && to_unit_double(rng()) < 0.3) {
    terms.retention_kind = finance::RetentionKind::Franchise;
  }
  return terms;
}

class TermsProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TermsProperties, OccurrenceInvariants) {
  Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto terms = random_terms(rng);
    double prev_out = 0.0;
    double prev_in = 0.0;
    for (int step = 0; step < 60; ++step) {
      const double gu = prev_in + sample_uniform(rng, 0.0, 100.0);
      const double out = finance::apply_occurrence(terms, gu);
      // Bounded by the limit, non-negative.
      ASSERT_GE(out, 0.0);
      ASSERT_LE(out, terms.occ_limit);
      // Monotone in the ground-up loss.
      ASSERT_GE(out, prev_out);
      if (terms.retention_kind == finance::RetentionKind::Deductible) {
        // 1-Lipschitz (franchise layers jump at the trigger, deductible
        // layers never amplify an increment).
        ASSERT_LE(out - prev_out, (gu - prev_in) + 1e-9);
        // Never pays more than the loss.
        ASSERT_LE(out, gu + 1e-9);
      }
      prev_out = out;
      prev_in = gu;
    }
  }
}

TEST_P(TermsProperties, AggregateInvariants) {
  Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto terms = random_terms(rng);
    double prev_out = 0.0;
    double prev_in = 0.0;
    for (int step = 0; step < 60; ++step) {
      const double annual = prev_in + sample_uniform(rng, 0.0, 200.0);
      const double out = finance::apply_aggregate(terms, annual);
      ASSERT_GE(out, 0.0);
      ASSERT_LE(out, terms.agg_limit);
      ASSERT_GE(out, prev_out);
      ASSERT_LE(out - prev_out, (annual - prev_in) + 1e-9);
      prev_out = out;
      prev_in = annual;
    }
  }
}

TEST_P(TermsProperties, YearNetIsShareLinear) {
  Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    auto terms = random_terms(rng);
    std::vector<Money> losses;
    for (int i = 0; i < 8; ++i) {
      losses.push_back(sample_uniform(rng, 0.0, 1'000.0));
    }
    terms.share = 1.0;
    const double full = finance::apply_year(terms, losses);
    terms.share = 0.37;
    const double partial = finance::apply_year(terms, losses);
    ASSERT_NEAR(partial, 0.37 * full, 1e-9);
  }
}

TEST_P(TermsProperties, FranchisePaysAtLeastDeductible) {
  Xoshiro256ss rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    auto terms = random_terms(rng, /*allow_franchise=*/false);
    auto franchise = terms;
    franchise.retention_kind = finance::RetentionKind::Franchise;
    for (int step = 0; step < 40; ++step) {
      const double gu = sample_uniform(rng, 0.0, 3'000.0);
      // Ground-up payout from a franchise trigger dominates the deductible
      // form at equal retention/limit.
      ASSERT_GE(finance::apply_occurrence(franchise, gu),
                finance::apply_occurrence(terms, gu) - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermsProperties,
                         ::testing::Values(1u, 7u, 23u, 99u, 1234u));

// ---------------------------------------------------------------------------
// Engine properties
// ---------------------------------------------------------------------------

struct EngineWorld {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

EngineWorld random_world(std::uint64_t seed, std::size_t contracts = 4) {
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = 250;
  pg.elt_rows = 60;
  pg.seed = seed;
  data::YeltGenConfig yg;
  yg.trials = 400;
  yg.seed = seed * 31 + 7;
  return EngineWorld{finance::generate_portfolio(pg), data::generate_yelt(250, yg)};
}

class EngineProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperties, PortfolioIsTrialwiseAdditive) {
  const auto world = random_world(GetParam(), 6);
  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  config.compute_oep = false;

  const auto whole = core::run_aggregate_analysis(world.portfolio, world.yelt, config);

  // Split 6 contracts into two sub-portfolios and re-run.
  finance::Portfolio first;
  finance::Portfolio second;
  for (std::size_t c = 0; c < world.portfolio.size(); ++c) {
    (c < 3 ? first : second).add(world.portfolio.contract(c));
  }
  const auto a = core::run_aggregate_analysis(first, world.yelt, config);
  const auto b = core::run_aggregate_analysis(second, world.yelt, config);

  for (TrialId t = 0; t < world.yelt.trials(); ++t) {
    ASSERT_NEAR(a.portfolio_ylt[t] + b.portfolio_ylt[t], whole.portfolio_ylt[t], 1e-6);
  }
}

TEST_P(EngineProperties, LossDistributionInvariantUnderTrialPermutation) {
  const auto world = random_world(GetParam());
  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  config.secondary_uncertainty = false;  // permutation re-keys secondary draws
  config.compute_oep = false;

  const auto base = core::run_aggregate_analysis(world.portfolio, world.yelt, config);

  // Rebuild the YELT with trials reversed.
  data::YearEventLossTable::Builder builder(world.yelt.trials());
  for (TrialId t = world.yelt.trials(); t-- > 0;) {
    builder.begin_trial();
    const auto events = world.yelt.trial_events(t);
    const auto days = world.yelt.trial_days(t);
    for (std::size_t i = 0; i < events.size(); ++i) {
      builder.add(events[i], days[i]);
    }
  }
  const auto reversed_yelt = builder.finish();
  const auto reversed =
      core::run_aggregate_analysis(world.portfolio, reversed_yelt, config);

  // Trial t of the reversed run equals trial (n-1-t) of the base run...
  const TrialId n = world.yelt.trials();
  for (TrialId t = 0; t < n; ++t) {
    ASSERT_EQ(reversed.portfolio_ylt[t], base.portfolio_ylt[n - 1 - t]);
  }
  // ...so every distributional metric agrees exactly.
  auto s1 = core::summarise(base.portfolio_ylt);
  auto s2 = core::summarise(reversed.portfolio_ylt);
  ASSERT_DOUBLE_EQ(s1.var_99, s2.var_99);
  ASSERT_DOUBLE_EQ(s1.tvar_99, s2.tvar_99);
}

TEST_P(EngineProperties, DroppingACatalogueEventNeverRaisesLoss) {
  const auto world = random_world(GetParam(), 1);
  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  config.secondary_uncertainty = false;
  config.compute_oep = false;

  const auto base = core::run_aggregate_analysis(world.portfolio, world.yelt, config);

  // Remove one event from the contract's ELT (its losses vanish).
  const auto& original = world.portfolio.contract(0);
  std::vector<data::EltRow> rows;
  for (std::size_t i = 1; i < original.elt().size(); ++i) {
    rows.push_back(original.elt().row(i));
  }
  finance::Portfolio reduced;
  reduced.add(finance::Contract(0, data::EventLossTable::from_rows(std::move(rows)),
                                original.layers()));
  const auto thinner = core::run_aggregate_analysis(reduced, world.yelt, config);

  for (TrialId t = 0; t < world.yelt.trials(); ++t) {
    ASSERT_LE(thinner.portfolio_ylt[t], base.portfolio_ylt[t] + 1e-9);
  }
}

TEST_P(EngineProperties, MetricCoherenceOnEngineOutput) {
  const auto world = random_world(GetParam());
  const auto result = core::run_aggregate_analysis(world.portfolio, world.yelt, {});
  const auto& ylt = result.portfolio_ylt;

  double prev_var = -1.0;
  for (const double p : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    const double var = core::value_at_risk(ylt, p);
    ASSERT_GE(var, prev_var);
    ASSERT_GE(core::tail_value_at_risk(ylt, p), var);
    prev_var = var;
  }

  // Positive homogeneity + translation equivariance on the engine output.
  auto scaled = ylt;
  scaled *= 2.5;
  ASSERT_NEAR(core::value_at_risk(scaled, 0.95), 2.5 * core::value_at_risk(ylt, 0.95),
              1e-9);
}

TEST_P(EngineProperties, SerializationRoundTripsEngineInputsAndOutputs) {
  const auto world = random_world(GetParam(), 2);

  // ELT round trip.
  ByteWriter ew;
  data::encode(world.portfolio.contract(0).elt(), ew);
  ByteReader er(ew.buffer());
  const auto elt2 = data::decode_elt(er);
  ASSERT_EQ(elt2.size(), world.portfolio.contract(0).elt().size());

  // YELT round trip.
  ByteWriter yw;
  data::encode(world.yelt, yw);
  ByteReader yr(yw.buffer());
  const auto yelt2 = data::decode_yelt(yr);

  // Same inputs -> same outputs through the round trip.
  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const auto a = core::run_aggregate_analysis(world.portfolio, world.yelt, config);
  const auto b = core::run_aggregate_analysis(world.portfolio, yelt2, config);
  for (TrialId t = 0; t < world.yelt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties,
                         ::testing::Values(11u, 29u, 57u, 83u, 1001u));

}  // namespace
}  // namespace riskan
