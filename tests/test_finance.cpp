// Financial terms algebra, contracts/portfolios, premium formulas.
#include <gtest/gtest.h>

#include <vector>

#include "finance/contract.hpp"
#include "finance/premium.hpp"
#include "finance/terms.hpp"
#include "util/require.hpp"

namespace riskan::finance {
namespace {

LayerTerms simple_terms() {
  LayerTerms terms;
  terms.occ_retention = 100.0;
  terms.occ_limit = 200.0;
  terms.agg_retention = 50.0;
  terms.agg_limit = 300.0;
  terms.share = 0.8;
  return terms;
}

TEST(Terms, OccurrenceOracle) {
  const auto terms = simple_terms();
  EXPECT_DOUBLE_EQ(apply_occurrence(terms, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_occurrence(terms, 100.0), 0.0);    // at retention
  EXPECT_DOUBLE_EQ(apply_occurrence(terms, 150.0), 50.0);   // inside layer
  EXPECT_DOUBLE_EQ(apply_occurrence(terms, 300.0), 200.0);  // at exhaustion
  EXPECT_DOUBLE_EQ(apply_occurrence(terms, 1e9), 200.0);    // capped
}

TEST(Terms, AggregateOracle) {
  const auto terms = simple_terms();
  EXPECT_DOUBLE_EQ(apply_aggregate(terms, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_aggregate(terms, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_aggregate(terms, 150.0), 100.0);
  EXPECT_DOUBLE_EQ(apply_aggregate(terms, 350.0), 300.0);
  EXPECT_DOUBLE_EQ(apply_aggregate(terms, 1e9), 300.0);
}

TEST(Terms, YearComposesOccurrenceThenAggregate) {
  const auto terms = simple_terms();
  // Occurrences: 150 -> 50, 400 -> 200, 90 -> 0. Annual = 250.
  // Aggregate: min(max(250-50,0),300) = 200. Share 0.8 -> 160.
  const std::vector<Money> losses{150.0, 400.0, 90.0};
  EXPECT_DOUBLE_EQ(apply_year(terms, losses), 160.0);
}

TEST(Terms, YearOfNothingIsZero) {
  const auto terms = simple_terms();
  EXPECT_DOUBLE_EQ(apply_year(terms, {}), 0.0);
}

class TermsMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(TermsMonotonicity, OccurrenceIsMonotoneAndBounded) {
  const auto terms = simple_terms();
  const double x = GetParam();
  const double y = x + 13.0;
  EXPECT_LE(apply_occurrence(terms, x), apply_occurrence(terms, y));
  EXPECT_GE(apply_occurrence(terms, x), 0.0);
  EXPECT_LE(apply_occurrence(terms, x), terms.occ_limit);
  // 1-Lipschitz: the layer never amplifies a loss increment.
  EXPECT_LE(apply_occurrence(terms, y) - apply_occurrence(terms, x), 13.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(GroundUpSweep, TermsMonotonicity,
                         ::testing::Values(0.0, 50.0, 99.0, 100.0, 101.0, 250.0, 299.0,
                                           300.0, 1e4, 1e8));

TEST(Terms, ValidationCatchesBadValues) {
  LayerTerms terms = simple_terms();
  terms.share = 0.0;
  EXPECT_THROW(terms.validate(), ContractViolation);
  terms = simple_terms();
  terms.share = 1.5;
  EXPECT_THROW(terms.validate(), ContractViolation);
  terms = simple_terms();
  terms.occ_retention = -1.0;
  EXPECT_THROW(terms.validate(), ContractViolation);
  terms = simple_terms();
  terms.occ_limit = 0.0;
  EXPECT_THROW(terms.validate(), ContractViolation);
  EXPECT_NO_THROW(simple_terms().validate());
  EXPECT_NO_THROW(LayerTerms::typical().validate());
}

TEST(Reinstatements, ImpliedAggregateLimit) {
  Reinstatements r;
  r.count = 2;
  EXPECT_DOUBLE_EQ(r.implied_agg_limit(60e6), 180e6);
  r.count = 0;
  EXPECT_DOUBLE_EQ(r.implied_agg_limit(60e6), 60e6);
}

TEST(Reinstatements, PremiumProRata) {
  Reinstatements r;
  r.count = 1;
  r.premium_rate = 1.0;
  // Half the limit consumed -> half the upfront premium due.
  EXPECT_DOUBLE_EQ(r.premium_due(30e6, 60e6, 10e6), 5e6);
  // Full limit consumed -> one full reinstatement.
  EXPECT_DOUBLE_EQ(r.premium_due(60e6, 60e6, 10e6), 10e6);
  // Consumption beyond count * limit is capped.
  EXPECT_DOUBLE_EQ(r.premium_due(500e6, 60e6, 10e6), 10e6);
  // No reinstatements -> no premium.
  r.count = 0;
  EXPECT_DOUBLE_EQ(r.premium_due(60e6, 60e6, 10e6), 0.0);
}

TEST(Contract, RequiresLayersAndValidTerms) {
  auto elt = data::EventLossTable::from_rows({{1, 10.0, 1.0, 50.0}});
  EXPECT_THROW(Contract(0, elt, {}), ContractViolation);

  Layer bad;
  bad.terms.share = -1.0;
  EXPECT_THROW(Contract(0, elt, {bad}), ContractViolation);

  Layer good;
  good.terms = simple_terms();
  const Contract contract(7, elt, {good}, Region::Europe, LineOfBusiness::Marine,
                          Peril::Flood);
  EXPECT_EQ(contract.id(), 7u);
  EXPECT_EQ(contract.region(), Region::Europe);
  EXPECT_EQ(contract.lob(), LineOfBusiness::Marine);
  EXPECT_EQ(contract.peril(), Peril::Flood);
  EXPECT_DOUBLE_EQ(contract.elt_mean_mass(), 10.0);
}

TEST(Portfolio, GeneratorHonoursConfig) {
  PortfolioGenConfig config;
  config.contracts = 25;
  config.catalog_events = 1'000;
  config.elt_rows = 100;
  config.layers_per_contract = 2;
  config.seed = 3;
  const auto portfolio = generate_portfolio(config);

  EXPECT_EQ(portfolio.size(), 25u);
  EXPECT_EQ(portfolio.layer_count(), 50u);
  EXPECT_GT(portfolio.elt_byte_size(), 0u);
  for (const auto& contract : portfolio.contracts()) {
    EXPECT_EQ(contract.elt().size(), 100u);
    EXPECT_EQ(contract.layers().size(), 2u);
    for (const auto id : contract.elt().event_ids()) {
      EXPECT_LT(id, 1'000u);
    }
    for (const auto& layer : contract.layers()) {
      EXPECT_NO_THROW(layer.terms.validate());
      EXPECT_GT(layer.upfront_premium, 0.0);
    }
  }
}

TEST(Portfolio, GeneratorDeterministicInSeed) {
  PortfolioGenConfig config;
  config.contracts = 5;
  config.catalog_events = 200;
  config.elt_rows = 50;
  const auto a = generate_portfolio(config);
  const auto b = generate_portfolio(config);
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a.contract(c).elt().size(), b.contract(c).elt().size());
    for (std::size_t i = 0; i < a.contract(c).elt().size(); ++i) {
      ASSERT_EQ(a.contract(c).elt().event_ids()[i], b.contract(c).elt().event_ids()[i]);
      ASSERT_DOUBLE_EQ(a.contract(c).elt().mean_loss()[i],
                       b.contract(c).elt().mean_loss()[i]);
    }
  }
}

TEST(Portfolio, GeneratorDenseFootprint) {
  PortfolioGenConfig config;
  config.contracts = 2;
  config.catalog_events = 100;
  config.elt_rows = 90;  // dense: exercises the Bernoulli-sweep path
  const auto portfolio = generate_portfolio(config);
  for (const auto& contract : portfolio.contracts()) {
    EXPECT_EQ(contract.elt().size(), 90u);
  }
}

TEST(Portfolio, GeneratorRejectsImpossibleFootprint) {
  PortfolioGenConfig config;
  config.elt_rows = 1'000;
  config.catalog_events = 100;
  EXPECT_THROW((void)generate_portfolio(config), ContractViolation);
}

TEST(Premium, TechnicalPremiumFormula) {
  LossStatistics stats;
  stats.expected_loss = 100.0;
  stats.loss_stdev = 50.0;
  stats.tvar_99 = 400.0;
  PricingTerms terms;
  terms.expense_ratio = 0.10;
  terms.volatility_load = 0.30;
  terms.capital_load = 0.05;
  terms.target_margin = 0.05;
  // risk cost = 100 + 15 + 20 = 135; grossed by 1/(1-0.15).
  EXPECT_NEAR(technical_premium(stats, terms), 135.0 / 0.85, 1e-9);
}

TEST(Premium, RateOnLine) {
  EXPECT_DOUBLE_EQ(rate_on_line(12e6, 60e6), 0.2);
  EXPECT_THROW(rate_on_line(1.0, 0.0), ContractViolation);
}

TEST(Premium, SummariseLosses) {
  std::vector<Money> losses(1000, 0.0);
  for (std::size_t i = 0; i < losses.size(); ++i) {
    losses[i] = static_cast<double>(i);  // 0..999
  }
  const auto stats = summarise_losses(losses);
  EXPECT_NEAR(stats.expected_loss, 499.5, 1e-9);
  EXPECT_GT(stats.tvar_99, 989.0);  // mean of the top ~1%
  EXPECT_GT(stats.loss_stdev, 0.0);
  EXPECT_THROW(summarise_losses({}), ContractViolation);
}

TEST(Premium, MoreVolatilityCostsMore) {
  PricingTerms terms;
  LossStatistics low;
  low.expected_loss = 100.0;
  low.loss_stdev = 10.0;
  low.tvar_99 = 150.0;
  LossStatistics high = low;
  high.loss_stdev = 80.0;
  EXPECT_GT(technical_premium(high, terms), technical_premium(low, terms));
}

}  // namespace
}  // namespace riskan::finance
