// Streaming stage-2: bounded-memory aggregate analysis from a chunked YELT
// file, plus the franchise retention kind end to end.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/streaming.hpp"
#include "util/bytes.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

class StreamingFixture : public ::testing::TestWithParam<TrialId> {
 protected:
  void SetUp() override {
    finance::PortfolioGenConfig pg;
    pg.contracts = 5;
    pg.catalog_events = 200;
    pg.elt_rows = 50;
    portfolio_ = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = 777;  // deliberately not a multiple of common chunk sizes
    yelt_ = data::generate_yelt(200, yg);
    path_ = "/tmp/riskan_stream_" + std::to_string(GetParam()) + ".yeltc";
  }

  void TearDown() override { remove_file(path_); }

  finance::Portfolio portfolio_;
  data::YearEventLossTable yelt_;
  std::string path_;
};

TEST_P(StreamingFixture, MatchesInMemoryBitExactly) {
  const TrialId per_chunk = GetParam();
  const auto chunks = save_yelt_chunked(yelt_, path_, per_chunk);
  EXPECT_EQ(chunks, (yelt_.trials() + per_chunk - 1) / per_chunk);

  EngineConfig config;
  config.backend = Backend::Sequential;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto reference = run_aggregate_analysis(portfolio_, yelt_, config);

  const auto streamed = run_aggregate_streaming(portfolio_, path_, config);
  ASSERT_EQ(streamed.portfolio_ylt.trials(), yelt_.trials());
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(streamed.portfolio_ylt[t], reference.portfolio_ylt[t]) << "trial " << t;
  }
  EXPECT_EQ(streamed.blocks, chunks);
  EXPECT_GT(streamed.bytes_read, 0u);
  // Bounded memory: the peak block is far below the full file.
  if (chunks > 1) {
    EXPECT_LT(streamed.peak_block_bytes, streamed.bytes_read);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamingFixture,
                         ::testing::Values(TrialId{50}, TrialId{128}, TrialId{777},
                                           TrialId{10'000}));

TEST(Streaming, ThreadedBackendInsideBlocksAgrees) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 3;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 500;
  const auto yelt = data::generate_yelt(100, yg);
  const std::string path = "/tmp/riskan_stream_threaded.yeltc";
  save_yelt_chunked(yelt, path, 100);

  EngineConfig seq;
  seq.backend = Backend::Sequential;
  EngineConfig thr;
  thr.backend = Backend::Threaded;
  const auto a = run_aggregate_streaming(portfolio, path, seq);
  const auto b = run_aggregate_streaming(portfolio, path, thr);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
  remove_file(path);
}

TEST(Streaming, DeviceSimBackendAgreesWithInMemory) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 3;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 400;
  const auto yelt = data::generate_yelt(100, yg);
  const std::string path = "/tmp/riskan_stream_device.yeltc";
  save_yelt_chunked(yelt, path, 100);

  EngineConfig config;
  config.backend = Backend::DeviceSim;
  const auto reference = run_aggregate_analysis(portfolio, yelt, config);
  DeviceRunInfo info;
  config.device_info = &info;
  const auto streamed = run_aggregate_streaming(portfolio, path, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(streamed.portfolio_ylt[t], reference.portfolio_ylt[t]) << "trial " << t;
    ASSERT_EQ(streamed.portfolio_occurrence_ylt[t], reference.portfolio_occurrence_ylt[t]);
  }
  // One launch sequence per trial block: the streamed run launches at
  // least once per block.
  EXPECT_GE(static_cast<std::size_t>(info.launches), streamed.blocks);
  remove_file(path);
}

TEST(Streaming, MissingFileRejected) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 50;
  pg.elt_rows = 10;
  const auto portfolio = finance::generate_portfolio(pg);
  EXPECT_THROW((void)run_aggregate_streaming(portfolio, "/nonexistent", {}),
               ContractViolation);
}

TEST(Streaming, ContractsEnforced) {
  data::YeltGenConfig yg;
  yg.trials = 10;
  const auto yelt = data::generate_yelt(10, yg);
  EXPECT_THROW((void)save_yelt_chunked(yelt, "/tmp/x.yeltc", 0), ContractViolation);
}

// ---------------------------------------------------------------------------
// Franchise retention end to end
// ---------------------------------------------------------------------------

TEST(Franchise, EngineAppliesGroundUpPayout) {
  auto elt = data::EventLossTable::from_rows({{1, 120.0, 0.0, 120.0}});
  finance::Layer deductible;
  deductible.id = 0;
  deductible.terms.occ_retention = 100.0;
  deductible.terms.occ_limit = 500.0;
  deductible.terms.agg_limit = 1'000.0;
  finance::Layer franchise = deductible;
  franchise.terms.retention_kind = finance::RetentionKind::Franchise;

  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(1, 0);
  const auto yelt = builder.finish();

  EngineConfig config;
  config.secondary_uncertainty = false;

  finance::Portfolio p1;
  p1.add(finance::Contract(0, elt, {deductible}));
  finance::Portfolio p2;
  p2.add(finance::Contract(0, elt, {franchise}));

  const auto a = run_aggregate_analysis(p1, yelt, config);
  const auto b = run_aggregate_analysis(p2, yelt, config);
  EXPECT_DOUBLE_EQ(a.portfolio_ylt[0], 20.0);   // 120 - 100
  EXPECT_DOUBLE_EQ(b.portfolio_ylt[0], 120.0);  // trigger cleared: ground up
}

TEST(Franchise, BelowTriggerPaysNothing) {
  finance::LayerTerms terms;
  terms.occ_retention = 100.0;
  terms.occ_limit = 500.0;
  terms.retention_kind = finance::RetentionKind::Franchise;
  EXPECT_DOUBLE_EQ(finance::apply_occurrence(terms, 99.9), 0.0);
  EXPECT_DOUBLE_EQ(finance::apply_occurrence(terms, 100.0), 0.0);  // at trigger
  EXPECT_DOUBLE_EQ(finance::apply_occurrence(terms, 100.1), 100.1);
  EXPECT_DOUBLE_EQ(finance::apply_occurrence(terms, 900.0), 500.0);  // capped
}

}  // namespace
}  // namespace riskan::core
