// Failure-injection and robustness: truncated/corrupted files must throw
// ContractViolation (never crash or return garbage), and the clustered
// frequency model must honour its moments.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "data/chunked_file.hpp"
#include "data/serialize.hpp"
#include "dist/coordinator.hpp"
#include "finance/contract.hpp"
#include "scenario/sweep.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::data {
namespace {

template <typename Table>
std::vector<std::byte> encoded(const Table& table) {
  ByteWriter writer;
  encode(table, writer);
  return writer.buffer();
}

TEST(Robustness, TruncatedEltThrowsAtEveryLength) {
  const auto elt = EventLossTable::from_rows({
      {1, 10.0, 1.0, 50.0},
      {2, 20.0, 2.0, 80.0},
      {7, 30.0, 3.0, 90.0},
  });
  const auto bytes = encoded(elt);
  // Every strict prefix must fail loudly.
  for (std::size_t len = 0; len < bytes.size(); len += 3) {
    ByteReader reader(std::span<const std::byte>(bytes).subspan(0, len));
    EXPECT_THROW((void)decode_elt(reader), ContractViolation) << "length " << len;
  }
  // The full buffer still decodes.
  ByteReader reader(bytes);
  EXPECT_EQ(decode_elt(reader).size(), 3u);
}

TEST(Robustness, TruncatedYeltThrows) {
  YeltGenConfig config;
  config.trials = 40;
  const auto yelt = generate_yelt(50, config);
  const auto bytes = encoded(yelt);
  for (const std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{17},
                                bytes.size() / 2, bytes.size() - 1}) {
    ByteReader reader(std::span<const std::byte>(bytes).subspan(0, len));
    EXPECT_THROW((void)decode_yelt(reader), ContractViolation) << "length " << len;
  }
}

TEST(Robustness, BitFlippedMagicRejected) {
  YearLossTable ylt(5, "x");
  auto bytes = encoded(ylt);
  bytes[0] ^= std::byte{0x01};
  ByteReader reader(bytes);
  EXPECT_THROW((void)decode_ylt(reader), ContractViolation);
}

TEST(Robustness, ChunkedFileTruncationDetected) {
  const std::string path = "/tmp/riskan_robust_chunks.bin";
  {
    ChunkedFileWriter writer(path);
    ByteWriter chunk;
    chunk.str("payload payload payload");
    writer.append(chunk.buffer());
    writer.finish();
  }
  const auto bytes = read_file(path);
  // Cut the directory out while keeping the 12-byte footer intact: the
  // directory offset now points past the end — the typed
  // TruncatedFileError, not a programmer contract.
  std::vector<std::byte> shrunk(bytes.begin(), bytes.begin() + 16);
  shrunk.insert(shrunk.end(), bytes.end() - 12, bytes.end());
  write_file(path, shrunk);
  EXPECT_THROW(ChunkedFileReader{path}, TruncatedFileError);
  // Chopping the tail destroys the footer itself — indistinguishable from
  // a non-chunked file, but still a typed IoError, never silent garbage.
  std::vector<std::byte> chopped(bytes.begin(), bytes.end() - 6);
  write_file(path, chopped);
  EXPECT_THROW(ChunkedFileReader{path}, IoError);
  remove_file(path);
}

TEST(Robustness, ChunkedFileBodyCorruptionDetected) {
  const std::string path = "/tmp/riskan_robust_chunks2.bin";
  {
    ChunkedFileWriter writer(path);
    ByteWriter chunk;
    chunk.u64(42);
    writer.append(chunk.buffer());
    writer.finish();
  }
  auto bytes = read_file(path);
  // Grow the directory's size entry beyond the body.
  // Directory layout: [body][u64 count][u64 size][u32 crc][magic u32][u64 offset].
  const std::size_t size_pos = bytes.size() - 12 - 12;
  bytes[size_pos] = std::byte{0xFF};
  write_file(path, bytes);
  EXPECT_THROW(ChunkedFileReader{path}, CorruptChunkError);
  remove_file(path);
}

// ---------------------------------------------------------------------------
// Clustered (negative binomial) frequency
// ---------------------------------------------------------------------------

TEST(ClusteredFrequency, OverdispersionRaisesVariance) {
  YeltGenConfig poisson;
  poisson.trials = 20'000;
  poisson.mean_events_per_year = 8.0;
  poisson.seed = 21;
  YeltGenConfig clustered = poisson;
  clustered.dispersion = 0.5;

  auto count_stats = [](const YearEventLossTable& yelt) {
    OnlineStats stats;
    for (TrialId t = 0; t < yelt.trials(); ++t) {
      stats.add(static_cast<double>(yelt.trial_size(t)));
    }
    return stats;
  };

  const auto a = count_stats(generate_yelt(100, poisson));
  const auto b = count_stats(generate_yelt(100, clustered));

  // Both preserve the mean...
  EXPECT_NEAR(a.mean(), 8.0, 0.2);
  EXPECT_NEAR(b.mean(), 8.0, 0.3);
  // ...Poisson has variance ~= mean; NB has variance = mean(1 + d*mean).
  EXPECT_NEAR(a.variance() / a.mean(), 1.0, 0.1);
  const double expected_ratio = 1.0 + 0.5 * 8.0;
  EXPECT_NEAR(b.variance() / b.mean(), expected_ratio, 0.2 * expected_ratio);
}

TEST(ClusteredFrequency, ZeroDispersionIsPoissonPathIdentical) {
  YeltGenConfig a;
  a.trials = 200;
  a.seed = 3;
  YeltGenConfig b = a;
  b.dispersion = 0.0;
  const auto ya = generate_yelt(50, a);
  const auto yb = generate_yelt(50, b);
  ASSERT_EQ(ya.entries(), yb.entries());
  for (std::size_t i = 0; i < ya.entries(); ++i) {
    ASSERT_EQ(ya.events()[i], yb.events()[i]);
  }
}

TEST(ClusteredFrequency, NegativeDispersionRejected) {
  YeltGenConfig config;
  config.dispersion = -0.1;
  EXPECT_THROW((void)generate_yelt(10, config), ContractViolation);
}

}  // namespace
}  // namespace riskan::data

// EngineConfig cross-field validation: every engine entry point rejects
// nonsensical knobs up front with a ContractViolation instead of
// misbehaving (or silently "working") downstream.
namespace riskan::core {
namespace {

struct ValidationWorld {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

ValidationWorld validation_world() {
  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  data::YeltGenConfig yg;
  yg.trials = 50;
  return ValidationWorld{finance::generate_portfolio(pg), data::generate_yelt(100, yg)};
}

TEST(EngineConfigValidation, RejectsNonPositiveDeviceBlockDim) {
  const auto w = validation_world();
  EngineConfig config;
  config.backend = Backend::DeviceSim;
  config.device_block_dim = 0;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
  config.device_block_dim = -128;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
}

TEST(EngineConfigValidation, RejectsAbsurdChunkingKnobs) {
  const auto w = validation_world();
  EngineConfig config;
  config.trial_grain = std::size_t{1} << 40;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);

  config = EngineConfig{};
  config.backend = Backend::DeviceSim;
  config.device_block_dim = 1 << 24;  // 16M trials per block is a bug
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);

  config = EngineConfig{};
  config.device_elt_chunk_rows = std::size_t{1} << 40;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
}

TEST(EngineConfigValidation, RejectsDegenerateDeviceSpec) {
  const auto w = validation_world();
  EngineConfig config;
  config.backend = Backend::DeviceSim;
  config.device_spec.const_mem_bytes = 0;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
  config = EngineConfig{};
  config.backend = Backend::DeviceSim;
  config.device_spec.shared_mem_per_block = 0;
  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
  // The same spec is legal on host backends (the device model is unused).
  config.backend = Backend::Threaded;
  EXPECT_NO_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config));
}

TEST(EngineConfigValidation, EveryEntryPointValidates) {
  const auto w = validation_world();
  EngineConfig config;
  config.device_block_dim = 0;  // invalid regardless of backend

  EXPECT_THROW((void)run_aggregate_analysis(w.portfolio, w.yelt, config),
               ContractViolation);
  EXPECT_THROW(PortfolioBatchRunner{config}, ContractViolation);
  EXPECT_THROW((void)run_portfolio_batch(w.portfolio, w.yelt, config),
               ContractViolation);
  const std::vector<scenario::ScenarioSpec> specs;
  EXPECT_THROW((void)scenario::run_scenario_sweep(
                   w.portfolio, w.yelt,
                   std::span<const scenario::ScenarioSpec>(specs), config),
               ContractViolation);
  EXPECT_THROW((void)run_layer(w.portfolio.contract(0),
                               w.portfolio.contract(0).layers()[0], w.yelt, config),
               ContractViolation);
}

}  // namespace
}  // namespace riskan::core

// DistConfig cross-field validation: the distribution runtime rejects
// nonsensical scheduling knobs before a single process forks, mirroring
// validate_engine_config.
namespace riskan::dist {
namespace {

TEST(DistConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(validate_dist_config(DistConfig{}));
}

TEST(DistConfigValidation, RejectsAbsurdWorkerCount) {
  DistConfig config;
  config.workers = 257;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
}

TEST(DistConfigValidation, RejectsBadLease) {
  DistConfig config;
  config.lease_seconds = 0.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config.lease_seconds = -1.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config.lease_seconds = 7200.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
}

TEST(DistConfigValidation, RejectsBadAttemptBudget) {
  DistConfig config;
  config.max_attempts = 0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config.max_attempts = 1001;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
}

TEST(DistConfigValidation, RejectsInvertedBackoffBounds) {
  DistConfig config;
  config.backoff_initial_seconds = 2.0;
  config.backoff_max_seconds = 1.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config.backoff_initial_seconds = -0.5;
  config.backoff_max_seconds = 1.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config = DistConfig{};
  config.backoff_max_seconds = 7200.0;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
}

TEST(DistConfigValidation, RejectsAbsurdRespawnBudgetAndStall) {
  DistConfig config;
  config.max_respawns = 5000;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
  config = DistConfig{};
  config.faults.stall_seconds = -0.1;
  EXPECT_THROW(validate_dist_config(config), ContractViolation);
}

TEST(DistConfigValidation, EntryPointValidatesUpFront) {
  // The coordinator validates before forking anything: a bad config is a
  // ContractViolation even with no blocks and a null-ish fetcher.
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 20;
  pg.elt_rows = 5;
  const auto portfolio = finance::generate_portfolio(pg);
  DistConfig config;
  config.max_attempts = 0;
  core::EngineConfig engine;
  const std::vector<BlockSpec> none;
  EXPECT_THROW((void)run_distributed_aggregate(
                   portfolio, engine, none,
                   [](const BlockSpec&) { return std::vector<std::byte>{}; },
                   config),
               ContractViolation);
}

}  // namespace
}  // namespace riskan::dist
