// Statistics utilities: Welford accumulator (incl. parallel merge law),
// quantiles against oracles, tail means, histogram, P2 streaming quantiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(stats.stdev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, SampleVarianceUsesBessel) {
  OnlineStats stats;
  stats.add(1.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 1.0);
}

TEST(OnlineStats, FewSamplesHaveZeroVariance) {
  OnlineStats stats;
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Xoshiro256ss rng(1);
  std::vector<double> values(10'000);
  for (auto& v : values) {
    v = to_unit_double(rng()) * 100.0 - 50.0;
  }

  OnlineStats whole;
  for (const double v : values) {
    whole.add(v);
  }

  // Split into 7 uneven parts, merge.
  OnlineStats merged;
  std::size_t pos = 0;
  const std::size_t cuts[] = {13, 400, 1000, 2500, 4000, 9000, 10'000};
  for (const std::size_t cut : cuts) {
    OnlineStats part;
    for (; pos < cut; ++pos) {
      part.add(values[pos]);
    }
    merged.merge(part);
  }

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Quantile, MatchesType7Oracle) {
  const std::vector<double> values{15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 35.0);
  // NumPy: np.quantile([15,20,35,40,50], 0.4) = 29.0
  EXPECT_DOUBLE_EQ(quantile(values, 0.4), 29.0);
  // np.quantile(..., 0.75) = 40.0 (h = 0.75*4 = 3.0 exactly)
  EXPECT_DOUBLE_EQ(quantile(values, 0.75), 40.0);
  // np.quantile(..., 0.9) = 46.0
  EXPECT_DOUBLE_EQ(quantile(values, 0.9), 46.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> values{50.0, 15.0, 40.0, 20.0, 35.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 35.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> values{42.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.37), 42.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 42.0);
}

TEST(Quantile, ContractsEnforced) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), ContractViolation);
  const std::vector<double> one{1.0};
  EXPECT_THROW(quantile(one, -0.1), ContractViolation);
  EXPECT_THROW(quantile(one, 1.1), ContractViolation);
}

TEST(TailMean, MatchesHandComputed) {
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
  // 0.8-quantile (type 7) = 8.2; values above: 9, 10 -> mean 9.5.
  EXPECT_DOUBLE_EQ(tail_mean_above(sorted, 0.8), 9.5);
}

TEST(TailMean, EmptyTailReturnsQuantile) {
  std::vector<double> sorted{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(tail_mean_above(sorted, 0.9), 5.0);
}

TEST(TailMean, DominatesQuantile) {
  Xoshiro256ss rng(3);
  std::vector<double> values(5000);
  for (auto& v : values) {
    v = to_unit_double(rng());
  }
  std::sort(values.begin(), values.end());
  for (const double p : {0.5, 0.9, 0.99}) {
    EXPECT_GE(tail_mean_above(values, p), quantile_sorted(values, p));
  }
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (right-open)
  h.add(100.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, ContractsEnforced) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.bin_count(2), ContractViolation);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksExactQuantileOnUniform) {
  const double p = GetParam();
  P2Quantile estimator(p);
  Xoshiro256ss rng(4);
  std::vector<double> all;
  const int n = 50'000;
  all.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = to_unit_double(rng());
    estimator.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, p);
  EXPECT_NEAR(estimator.value(), exact, 0.01) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Levels, P2Accuracy, ::testing::Values(0.1, 0.5, 0.9, 0.95, 0.99));

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile est(0.5);
  est.add(3.0);
  EXPECT_DOUBLE_EQ(est.value(), 3.0);
  est.add(1.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);  // median of {1,3}
  est.add(2.0);
  EXPECT_DOUBLE_EQ(est.value(), 2.0);
}

TEST(P2Quantile, HeavyTailStillReasonable) {
  P2Quantile est(0.99);
  Xoshiro256ss rng(5);
  std::vector<double> all;
  for (int i = 0; i < 100'000; ++i) {
    const double x = std::pow(to_unit_double_open(rng()), -1.0 / 2.0);  // Pareto a=2
    est.add(x);
    all.push_back(x);
  }
  const double exact = quantile(all, 0.99);
  EXPECT_NEAR(est.value() / exact, 1.0, 0.15);
}

TEST(P2Quantile, RejectsDegenerateLevels) {
  EXPECT_THROW(P2Quantile(0.0), ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), ContractViolation);
}

TEST(P2Quantile, ExactAtFiveSamplesEvenNearTheEdges) {
  // Through the 5th sample the markers ARE the sorted sample, so the
  // estimate must be the exact type-7 quantile — including extreme levels,
  // where an off-by-one in the marker init shows up immediately.
  for (const double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    P2Quantile est(p);
    for (const double x : {3.0, 1.0, 5.0, 2.0, 4.0}) {
      est.add(x);
    }
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(est.value(), quantile_sorted(sorted, p)) << "p = " << p;
  }
}

TEST(P2Quantile, ConstantStreamIsExact) {
  P2Quantile est(0.9);
  for (int i = 0; i < 10'000; ++i) {
    est.add(7.25);
  }
  EXPECT_DOUBLE_EQ(est.value(), 7.25);
}

TEST(P2Quantile, SortedStreamsStayNearTheOracle) {
  // Monotone arrival order is adversarial for marker-based estimators:
  // every new sample lands at the same end. The estimate should still
  // track the true quantile of the uniform grid closely.
  for (const bool descending : {false, true}) {
    std::vector<double> values(20'000);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>(i);
    }
    if (descending) {
      std::reverse(values.begin(), values.end());
    }
    for (const double p : {0.1, 0.5, 0.9}) {
      P2Quantile est(p);
      for (const double x : values) {
        est.add(x);
      }
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      const double exact = quantile_sorted(sorted, p);
      const double span = sorted.back() - sorted.front();
      EXPECT_NEAR(est.value(), exact, 0.05 * span)
          << "p = " << p << " descending = " << descending;
    }
  }
}

TEST(P2Quantile, DuplicateLadenStreamStaysWithinRange) {
  // A two-valued stream starves the interior markers of distinct heights;
  // the estimate must still stay inside the sample range.
  P2Quantile est(0.75);
  Xoshiro256ss rng(11);
  for (int i = 0; i < 50'000; ++i) {
    est.add(to_unit_double(rng()) < 0.9 ? 0.0 : 100.0);
  }
  EXPECT_GE(est.value(), 0.0);
  EXPECT_LE(est.value(), 100.0);
}

// ---------------------------------------------------------------------------
// Normal / Student-t quantiles — the CI machinery of core/adaptive
// ---------------------------------------------------------------------------

TEST(NormalQuantile, MatchesTabulatedValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829303548901, 1e-8);
  EXPECT_NEAR(normal_quantile(0.95), 1.644853626951473, 1e-8);
  EXPECT_DOUBLE_EQ(normal_quantile(0.5), 0.0);
}

TEST(NormalQuantile, IsAntisymmetricAroundTheMedian) {
  for (const double p : {0.6, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9) << "p = " << p;
  }
}

TEST(NormalQuantile, RejectsDegenerateLevels) {
  EXPECT_THROW(normal_quantile(0.0), ContractViolation);
  EXPECT_THROW(normal_quantile(1.0), ContractViolation);
}

TEST(StudentsTQuantile, ClosedFormsAtOneAndTwoDof) {
  // dof 1 is Cauchy, dof 2 has an algebraic inverse — both exact.
  EXPECT_NEAR(students_t_quantile(0.975, 1.0), 12.706204736174694, 1e-9);
  EXPECT_NEAR(students_t_quantile(0.975, 2.0), 4.302652729911275, 1e-9);
  EXPECT_NEAR(students_t_quantile(0.9, 1.0), 3.077683537175253, 1e-9);
}

TEST(StudentsTQuantile, TracksTablesAtModerateDof) {
  // Cornish–Fisher territory: ~1% of the tabulated two-sided 95% points.
  EXPECT_NEAR(students_t_quantile(0.975, 10.0), 2.228, 0.03);
  EXPECT_NEAR(students_t_quantile(0.975, 30.0), 2.042, 0.02);
  EXPECT_NEAR(students_t_quantile(0.975, 120.0), 1.980, 0.01);
}

TEST(StudentsTQuantile, ApproachesTheNormalAsDofGrows) {
  EXPECT_NEAR(students_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-4);
}

TEST(StudentsTQuantile, RejectsDegenerateInputs) {
  EXPECT_THROW(students_t_quantile(0.0, 10.0), ContractViolation);
  EXPECT_THROW(students_t_quantile(0.975, 0.5), ContractViolation);
}

TEST(BatchMeans, HalfWidthIsInfiniteUntilTwoBatches) {
  BatchMeans batches;
  EXPECT_TRUE(std::isinf(batches.half_width(0.95)));
  batches.add(1.0);
  EXPECT_TRUE(std::isinf(batches.half_width(0.95)));
  batches.add(2.0);
  EXPECT_TRUE(std::isfinite(batches.half_width(0.95)));
  EXPECT_DOUBLE_EQ(batches.mean(), 1.5);
}

TEST(BatchMeans, MatchesTheHandComputedTInterval) {
  BatchMeans batches;
  for (const double x : {10.0, 12.0, 14.0, 16.0}) {
    batches.add(x);
  }
  // s = sqrt(20/3), hw = t_{0.975,3} * s / sqrt(4).
  const double s = std::sqrt(20.0 / 3.0);
  const double expect = students_t_quantile(0.975, 3.0) * s / 2.0;
  EXPECT_NEAR(batches.half_width(0.95), expect, 1e-12);
}

TEST(BatchMeans, HalfWidthShrinksAsBatchesAccumulate) {
  // More i.i.d. batch values => tighter interval, monotonically across
  // 4 -> 16 -> 64 batches for this seeded stream.
  Xoshiro256ss rng(42);
  BatchMeans batches;
  std::vector<double> widths;
  std::uint64_t next_check = 4;
  for (int i = 1; i <= 64; ++i) {
    batches.add(to_unit_double(rng()));
    if (static_cast<std::uint64_t>(i) == next_check) {
      widths.push_back(batches.half_width(0.95));
      next_check *= 4;
    }
  }
  ASSERT_EQ(widths.size(), 3u);
  EXPECT_LT(widths[1], widths[0]);
  EXPECT_LT(widths[2], widths[1]);
}

}  // namespace
}  // namespace riskan
