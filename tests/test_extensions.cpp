// Extension features: post-event analysis, multi-year DFA projection,
// bootstrap confidence intervals, the stage-1 spatial index, and
// incremental warehouse maintenance.
#include <gtest/gtest.h>

#include <cmath>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "catmod/spatial_index.hpp"
#include "core/aggregate_engine.hpp"
#include "core/bootstrap.hpp"
#include "core/metrics.hpp"
#include "core/post_event.hpp"
#include "dfa/projection.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "warehouse/cube.hpp"

namespace riskan {
namespace {

// ---------------------------------------------------------------------------
// Post-event analysis
// ---------------------------------------------------------------------------

finance::Portfolio post_event_portfolio() {
  // Contract 0 is exposed to events 1 and 2; contract 1 only to event 2.
  auto elt0 = data::EventLossTable::from_rows({
      {1, 100.0, 0.0, 100.0},
      {2, 300.0, 0.0, 300.0},
  });
  auto elt1 = data::EventLossTable::from_rows({{2, 500.0, 0.0, 500.0}});

  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 50.0;
  layer.terms.occ_limit = 200.0;
  layer.terms.agg_limit = 400.0;
  layer.terms.share = 1.0;

  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt0), {layer}));
  portfolio.add(finance::Contract(1, std::move(elt1), {layer}));
  return portfolio;
}

TEST(PostEvent, OracleImpact) {
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);

  // Event 2: contract 0 gu=300 -> occ=min(250,200)=200 (exhausts);
  //          contract 1 gu=500 -> occ=200 (exhausts).
  const auto impact = analyzer.analyse(2);
  EXPECT_EQ(impact.event, 2u);
  EXPECT_EQ(impact.contracts_hit, 2u);
  EXPECT_DOUBLE_EQ(impact.portfolio_ground_up, 800.0);
  EXPECT_DOUBLE_EQ(impact.portfolio_net, 400.0);
  EXPECT_EQ(impact.layers_attaching, 2u);
  EXPECT_EQ(impact.layers_exhausted, 2u);
  ASSERT_EQ(impact.layers.size(), 2u);
  EXPECT_DOUBLE_EQ(impact.layers[0].remaining_agg_capacity, 200.0);
}

TEST(PostEvent, EventBelowRetentionDoesNotAttach) {
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);
  // Event 1 scaled down so gu = 40 < retention 50.
  const auto impact = analyzer.analyse(1, /*intensity_scale=*/0.4);
  EXPECT_EQ(impact.contracts_hit, 1u);
  EXPECT_DOUBLE_EQ(impact.portfolio_net, 0.0);
  EXPECT_EQ(impact.layers_attaching, 0u);
}

TEST(PostEvent, IntensityScaleIsMonotone) {
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);
  double prev = -1.0;
  for (const double scale : {0.3, 0.6, 1.0, 1.5, 3.0}) {
    const auto impact = analyzer.analyse(2, scale);
    EXPECT_GE(impact.portfolio_net, prev);
    prev = impact.portfolio_net;
  }
}

TEST(PostEvent, PriorAnnualLossesConsumeCapacity) {
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);
  // Contract 0 has already booked 350 of occurrence losses this year; its
  // 400 aggregate limit leaves only 50 net for event 2's 200 occurrence.
  const std::vector<Money> prior{350.0, 0.0};
  const auto impact = analyzer.analyse(2, 1.0, prior);
  ASSERT_EQ(impact.layers.size(), 2u);
  EXPECT_DOUBLE_EQ(impact.layers[0].net_loss, 50.0);
  EXPECT_DOUBLE_EQ(impact.layers[0].remaining_agg_capacity, 0.0);
  EXPECT_DOUBLE_EQ(impact.layers[1].net_loss, 200.0);  // contract 1 unaffected
}

TEST(PostEvent, WorstEventsRankByNetLoss) {
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);
  const std::vector<EventId> candidates{1, 2, 99};
  const auto worst = analyzer.worst_events(candidates, 5);
  ASSERT_EQ(worst.size(), 2u);  // event 99 hits nothing
  EXPECT_EQ(worst[0].event, 2u);
  EXPECT_EQ(worst[1].event, 1u);
  EXPECT_GE(worst[0].portfolio_net, worst[1].portfolio_net);
}

TEST(PostEvent, Contracts) {
  const finance::Portfolio empty;
  EXPECT_THROW(core::PostEventAnalyzer{empty}, ContractViolation);
  const auto portfolio = post_event_portfolio();
  const core::PostEventAnalyzer analyzer(portfolio);
  EXPECT_THROW((void)analyzer.analyse(1, 0.0), ContractViolation);
  const std::vector<Money> wrong_size{1.0};
  EXPECT_THROW((void)analyzer.analyse(1, 1.0, wrong_size), ContractViolation);
}

// ---------------------------------------------------------------------------
// Multi-year projection
// ---------------------------------------------------------------------------

class ProjectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A cat YLT with a meaningful tail relative to the default balance
    // sheet: exponential with 120M mean.
    Xoshiro256ss rng(9);
    cat_ylt_ = data::YearLossTable(5'000, "cat");
    for (TrialId t = 0; t < 5'000; ++t) {
      cat_ylt_[t] = -std::log(to_unit_double_open(rng())) * 1.2e8;
    }
  }

  dfa::ProjectionConfig base_config() const {
    dfa::ProjectionConfig config;
    config.paths = 3'000;
    config.horizon_years = 5;
    return config;
  }

  data::YearLossTable cat_ylt_;
};

TEST_F(ProjectionFixture, RuinProbabilityIsCumulative) {
  dfa::MultiYearProjection projection(dfa::standard_risk_sources(1), base_config());
  const auto result = projection.run(cat_ylt_);
  ASSERT_EQ(result.ruin_probability_by_year.size(), 5u);
  for (std::size_t y = 1; y < 5; ++y) {
    EXPECT_GE(result.ruin_probability_by_year[y],
              result.ruin_probability_by_year[y - 1]);
  }
  EXPECT_DOUBLE_EQ(result.ruin_probability, result.ruin_probability_by_year.back());
  EXPECT_GE(result.ruin_probability, 0.0);
  EXPECT_LE(result.ruin_probability, 1.0);
}

TEST_F(ProjectionFixture, MoreCapitalMeansLessRuin) {
  auto thin = base_config();
  thin.initial_capital = 2.0e8;
  auto thick = base_config();
  thick.initial_capital = 4.0e9;
  dfa::MultiYearProjection weak(dfa::standard_risk_sources(1), thin);
  dfa::MultiYearProjection strong(dfa::standard_risk_sources(1), thick);
  const auto weak_result = weak.run(cat_ylt_);
  const auto strong_result = strong.run(cat_ylt_);
  EXPECT_GT(weak_result.ruin_probability, strong_result.ruin_probability);
}

TEST_F(ProjectionFixture, CapitalQuantilesAreOrdered) {
  dfa::MultiYearProjection projection(dfa::standard_risk_sources(2), base_config());
  const auto result = projection.run(cat_ylt_);
  ASSERT_EQ(result.capital_quantiles.size(), 5u);
  for (const auto& qs : result.capital_quantiles) {
    EXPECT_LE(qs[0], qs[1]);
    EXPECT_LE(qs[1], qs[2]);
  }
}

TEST_F(ProjectionFixture, DeterministicInSeed) {
  dfa::MultiYearProjection a(dfa::standard_risk_sources(3), base_config());
  dfa::MultiYearProjection b(dfa::standard_risk_sources(3), base_config());
  const auto ra = a.run(cat_ylt_);
  const auto rb = b.run(cat_ylt_);
  EXPECT_DOUBLE_EQ(ra.ruin_probability, rb.ruin_probability);
  EXPECT_DOUBLE_EQ(ra.mean_terminal_capital, rb.mean_terminal_capital);
}

TEST_F(ProjectionFixture, SurvivorsGrowUnderProfitableTerms) {
  // With a fat capital base and tiny cat book, capital should drift up.
  auto config = base_config();
  config.initial_capital = 5.0e9;
  data::YearLossTable tiny_cat(1'000, "tiny");
  for (TrialId t = 0; t < 1'000; ++t) {
    tiny_cat[t] = 1e6;
  }
  dfa::MultiYearProjection projection(dfa::standard_risk_sources(4), config);
  const auto result = projection.run(tiny_cat);
  EXPECT_LT(result.ruin_probability, 0.05);
  EXPECT_GT(result.mean_terminal_capital, config.initial_capital);
}

TEST(Projection, ContractsEnforced) {
  dfa::ProjectionConfig config;
  config.horizon_years = 0;
  EXPECT_THROW(dfa::MultiYearProjection(dfa::standard_risk_sources(5), config),
               ContractViolation);
  EXPECT_THROW(dfa::MultiYearProjection({}, dfa::ProjectionConfig{}), ContractViolation);
}

// ---------------------------------------------------------------------------
// Bootstrap confidence intervals
// ---------------------------------------------------------------------------

class BootstrapFixture : public ::testing::Test {
 protected:
  data::YearLossTable make_ylt(TrialId n, std::uint64_t seed = 3) {
    Xoshiro256ss rng(seed);
    data::YearLossTable ylt(n);
    for (TrialId t = 0; t < n; ++t) {
      ylt[t] = -std::log(to_unit_double_open(rng())) * 100.0;
    }
    return ylt;
  }
};

TEST_F(BootstrapFixture, IntervalBracketsPointEstimate) {
  const auto ylt = make_ylt(5'000);
  const auto ci = core::bootstrap_var(ylt, 0.99);
  EXPECT_LE(ci.lo, ci.hi);
  EXPECT_TRUE(ci.contains(ci.point));
  EXPECT_DOUBLE_EQ(ci.point, core::value_at_risk(ylt, 0.99));
  EXPECT_DOUBLE_EQ(ci.confidence, 0.90);
}

TEST_F(BootstrapFixture, WidthShrinksWithSampleSize) {
  const auto small = core::bootstrap_var(make_ylt(500), 0.99);
  const auto large = core::bootstrap_var(make_ylt(50'000), 0.99);
  EXPECT_LT(large.width(), small.width());
}

TEST_F(BootstrapFixture, TvarIntervalSitsAboveVarInterval) {
  const auto ylt = make_ylt(5'000);
  const auto var_ci = core::bootstrap_var(ylt, 0.99);
  const auto tvar_ci = core::bootstrap_tvar(ylt, 0.99);
  EXPECT_GE(tvar_ci.point, var_ci.point);
  EXPECT_GE(tvar_ci.hi, var_ci.hi);
}

TEST_F(BootstrapFixture, PmlIsVarAtReturnPeriod) {
  const auto ylt = make_ylt(10'000);
  const auto pml = core::bootstrap_pml(ylt, 250.0);
  const auto var = core::bootstrap_var(ylt, 1.0 - 1.0 / 250.0);
  EXPECT_DOUBLE_EQ(pml.point, var.point);
  EXPECT_DOUBLE_EQ(pml.lo, var.lo);
}

TEST_F(BootstrapFixture, DeterministicInSeed) {
  const auto ylt = make_ylt(2'000);
  const auto a = core::bootstrap_tvar(ylt, 0.95);
  const auto b = core::bootstrap_tvar(ylt, 0.95);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  core::BootstrapConfig other;
  other.seed = 999;
  const auto c = core::bootstrap_tvar(ylt, 0.95, other);
  EXPECT_NE(a.lo, c.lo);  // different resamples
}

TEST_F(BootstrapFixture, WiderConfidenceWiderInterval) {
  const auto ylt = make_ylt(3'000);
  core::BootstrapConfig c90;
  c90.confidence = 0.90;
  core::BootstrapConfig c99;
  c99.confidence = 0.99;
  const auto narrow = core::bootstrap_var(ylt, 0.95, c90);
  const auto wide = core::bootstrap_var(ylt, 0.95, c99);
  EXPECT_GE(wide.width(), narrow.width());
}

TEST_F(BootstrapFixture, ContractsEnforced) {
  const data::YearLossTable empty;
  EXPECT_THROW((void)core::bootstrap_var(empty, 0.99), ContractViolation);
  const auto ylt = make_ylt(100);
  core::BootstrapConfig bad;
  bad.replicates = 2;
  EXPECT_THROW((void)core::bootstrap_var(ylt, 0.99, bad), ContractViolation);
  EXPECT_THROW((void)core::bootstrap_pml(ylt, 1.0), ContractViolation);
}

// ---------------------------------------------------------------------------
// Spatial index
// ---------------------------------------------------------------------------

class SpatialFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    catmod::ExposureConfig ec;
    ec.sites = 800;
    ec.seed = 17;
    exposure_ = catmod::ExposureDatabase::generate(ec);
    catmod::CatalogConfig cc;
    cc.events = 300;
    cc.seed = 18;
    catalog_ = catmod::EventCatalog::generate(cc);
  }

  catmod::ExposureDatabase exposure_;
  catmod::EventCatalog catalog_;
};

TEST_F(SpatialFixture, CandidatesAreSuperset) {
  const catmod::SiteGrid grid(exposure_, 16);
  // Every site within the radius must appear among the candidates.
  const double x = 5.0;
  const double y = 5.0;
  const double r = 1.5;
  std::size_t exact = 0;
  for (const auto& site : exposure_.sites()) {
    if (catmod::grid_distance(x, y, site.x, site.y) <= r) {
      ++exact;
    }
  }
  EXPECT_EQ(grid.count_within(x, y, r), exact);
}

TEST_F(SpatialFixture, CandidateCountIsSubQuadratic) {
  const catmod::SiteGrid grid(exposure_, 16);
  std::size_t candidates = 0;
  grid.for_each_candidate(2.0, 2.0, 1.0, [&](const catmod::Site&) { ++candidates; });
  EXPECT_LT(candidates, exposure_.size());  // pruning happened
}

TEST_F(SpatialFixture, PipelineWithIndexMatchesExhaustive) {
  catmod::PipelineConfig exhaustive;
  exhaustive.parallel = false;
  catmod::PipelineConfig indexed = exhaustive;
  indexed.use_spatial_index = true;

  catmod::PipelineStats stats_exhaustive;
  catmod::PipelineStats stats_indexed;
  const auto a = run_cat_model(catalog_, exposure_, exhaustive, &stats_exhaustive);
  const auto b = run_cat_model(catalog_, exposure_, indexed, &stats_indexed);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.event_ids()[i], b.event_ids()[i]);
    ASSERT_NEAR(a.mean_loss()[i] / b.mean_loss()[i], 1.0, 1e-9);
    ASSERT_NEAR(a.exposure()[i] / b.exposure()[i], 1.0, 1e-9);
  }
  // And the index did less work.
  EXPECT_LT(stats_indexed.event_exposure_pairs, stats_exhaustive.event_exposure_pairs);
  EXPECT_EQ(stats_indexed.pairs_with_loss, stats_exhaustive.pairs_with_loss);
}

TEST(SpatialGrid, EdgeCoordinatesStayInBounds) {
  catmod::ExposureConfig ec;
  ec.sites = 50;
  const auto exposure = catmod::ExposureDatabase::generate(ec);
  const catmod::SiteGrid grid(exposure, 4);
  // Corners and out-of-range radii must not crash or miss.
  EXPECT_NO_THROW((void)grid.count_within(0.0, 0.0, 20.0));
  EXPECT_EQ(grid.count_within(0.0, 0.0, 20.0), exposure.size());
  EXPECT_NO_THROW((void)grid.count_within(10.0, 10.0, 0.0));
  EXPECT_THROW((void)grid.count_within(5.0, 5.0, -1.0), ContractViolation);
  EXPECT_THROW(catmod::SiteGrid(exposure, 0), ContractViolation);
}

// ---------------------------------------------------------------------------
// Warehouse incremental maintenance
// ---------------------------------------------------------------------------

TEST(CubeIncremental, AddContractEqualsRebuild) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 12;
  pg.catalog_events = 200;
  pg.elt_rows = 40;
  const auto all = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 300;
  const auto yelt = data::generate_yelt(200, yg);

  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const auto result = core::run_aggregate_analysis(all, yelt, config);

  // Cube over the first 11 contracts, then add the 12th incrementally.
  finance::Portfolio partial;
  for (std::size_t c = 0; c + 1 < all.size(); ++c) {
    partial.add(all.contract(c));
  }
  core::EngineResult partial_result;
  partial_result.portfolio_ylt = data::YearLossTable(yelt.trials());
  for (std::size_t c = 0; c + 1 < all.size(); ++c) {
    partial_result.contract_ylts.push_back(result.contract_ylts[c]);
    partial_result.portfolio_ylt += result.contract_ylts[c];
  }
  warehouse::RiskCube incremental(partial, partial_result);
  incremental.add_contract(all.contract(all.size() - 1),
                           result.contract_ylts[all.size() - 1]);

  const warehouse::RiskCube rebuilt(all, result);
  const auto& a = incremental.total();
  const auto& b = rebuilt.total();
  ASSERT_EQ(a.contracts, b.contracts);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_NEAR(a.ylt[t], b.ylt[t], 1e-9);
  }
  EXPECT_NEAR(a.summary.tvar_99, b.summary.tvar_99, 1e-6);

  // Trial-count mismatch is rejected.
  EXPECT_THROW(incremental.add_contract(all.contract(0), data::YearLossTable(7)),
               ContractViolation);
}

}  // namespace
}  // namespace riskan
