// Access paths: serialization, chunked files, hash index, the Volcano
// row-store baseline, and scan-vs-index result equivalence (E5's
// correctness precondition).
#include <gtest/gtest.h>

#include "data/chunked_file.hpp"
#include "data/hash_index.hpp"
#include "data/scan.hpp"
#include "data/serialize.hpp"
#include "data/volcano.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::data {
namespace {

EventLossTable sample_elt() {
  std::vector<EltRow> rows;
  for (EventId e = 0; e < 50; e += 2) {  // even ids only
    rows.push_back({e, 10.0 * (e + 1), 2.0 * (e + 1), 100.0 * (e + 1)});
  }
  return EventLossTable::from_rows(std::move(rows));
}

TEST(Serialize, EltRoundTrip) {
  const auto elt = sample_elt();
  ByteWriter writer;
  encode(elt, writer);
  ByteReader reader(writer.buffer());
  const auto back = decode_elt(reader);
  ASSERT_EQ(back.size(), elt.size());
  for (std::size_t i = 0; i < elt.size(); ++i) {
    EXPECT_EQ(back.event_ids()[i], elt.event_ids()[i]);
    EXPECT_DOUBLE_EQ(back.mean_loss()[i], elt.mean_loss()[i]);
    EXPECT_DOUBLE_EQ(back.sigma_loss()[i], elt.sigma_loss()[i]);
    EXPECT_DOUBLE_EQ(back.exposure()[i], elt.exposure()[i]);
  }
}

TEST(Serialize, YeltRoundTrip) {
  YeltGenConfig config;
  config.trials = 300;
  const auto yelt = generate_yelt(100, config);
  ByteWriter writer;
  encode(yelt, writer);
  ByteReader reader(writer.buffer());
  const auto back = decode_yelt(reader);
  ASSERT_EQ(back.trials(), yelt.trials());
  ASSERT_EQ(back.entries(), yelt.entries());
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    const auto ea = yelt.trial_events(t);
    const auto eb = back.trial_events(t);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i], eb[i]);
      ASSERT_EQ(yelt.trial_days(t)[i], back.trial_days(t)[i]);
    }
  }
}

TEST(Serialize, YltRoundTripWithLabel) {
  YearLossTable ylt(5, "portfolio-x");
  for (TrialId t = 0; t < 5; ++t) {
    ylt[t] = 1.5 * t;
  }
  ByteWriter writer;
  encode(ylt, writer);
  ByteReader reader(writer.buffer());
  const auto back = decode_ylt(reader);
  EXPECT_EQ(back.label(), "portfolio-x");
  ASSERT_EQ(back.trials(), 5u);
  for (TrialId t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(back[t], ylt[t]);
  }
}

TEST(Serialize, FileRoundTrip) {
  const auto elt = sample_elt();
  const std::string path = "/tmp/riskan_test_elt.bin";
  save_elt(elt, path);
  const auto back = load_elt(path);
  EXPECT_EQ(back.size(), elt.size());
  remove_file(path);
}

TEST(Serialize, BadMagicRejected) {
  ByteWriter writer;
  writer.u32(0xBADBAD);
  writer.u32(1);
  ByteReader reader(writer.buffer());
  EXPECT_THROW((void)decode_elt(reader), ContractViolation);
}

TEST(Serialize, CrossTypeDecodeRejected) {
  YearLossTable ylt(2);
  ByteWriter writer;
  encode(ylt, writer);
  ByteReader reader(writer.buffer());
  EXPECT_THROW((void)decode_elt(reader), ContractViolation);
}

TEST(ChunkedFile, RoundTripsChunks) {
  const std::string path = "/tmp/riskan_test_chunks.bin";
  {
    ChunkedFileWriter writer(path);
    ByteWriter a;
    a.str("first chunk");
    ByteWriter b;
    b.u64(0xFEEDull);
    writer.append(a.buffer());
    writer.append(b.buffer());
    writer.append({});  // empty chunk is legal
    writer.finish();
    EXPECT_EQ(writer.chunks_written(), 3u);
  }
  ChunkedFileReader reader(path);
  ASSERT_EQ(reader.chunk_count(), 3u);
  EXPECT_TRUE(reader.has_checksums());
  const auto chunk0 = reader.read_chunk(0);
  ByteReader first(chunk0);
  EXPECT_EQ(first.str(), "first chunk");
  const auto chunk1 = reader.read_chunk(1);
  ByteReader second(chunk1);
  EXPECT_EQ(second.u64(), 0xFEEDull);
  EXPECT_EQ(reader.read_chunk(2).size(), 0u);
  EXPECT_THROW((void)reader.read_chunk(3), ContractViolation);
  remove_file(path);
}

TEST(ChunkedFile, DestructorFinishesImplicitly) {
  const std::string path = "/tmp/riskan_test_chunks2.bin";
  {
    ChunkedFileWriter writer(path);
    ByteWriter a;
    a.u32(7);
    writer.append(a.buffer());
    // no explicit finish
  }
  ChunkedFileReader reader(path);
  EXPECT_EQ(reader.chunk_count(), 1u);
  remove_file(path);
}

TEST(ChunkedFile, CorruptFileRejected) {
  const std::string path = "/tmp/riskan_test_chunks3.bin";
  ByteWriter garbage;
  garbage.u64(123);
  garbage.u64(456);
  write_file(path, garbage.buffer());
  // Garbage is damaged *data*, not a broken API contract: the typed
  // IoError hierarchy keeps the two failure classes distinguishable.
  EXPECT_THROW(ChunkedFileReader{path}, CorruptChunkError);
  remove_file(path);
}

TEST(HashIndex, InsertFindMiss) {
  HashIndex index;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    index.insert(k * 3, k);
  }
  EXPECT_EQ(index.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const auto hit = index.find(k * 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, k);
  }
  EXPECT_FALSE(index.find(1).has_value());
  EXPECT_FALSE(index.find(999'999).has_value());
  EXPECT_GT(index.probe_count(), 0u);
}

TEST(HashIndex, GrowsPastInitialCapacity) {
  HashIndex index(4);
  const auto initial = index.capacity();
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    index.insert(k, k + 1);
  }
  EXPECT_GT(index.capacity(), initial);
  EXPECT_EQ(*index.find(9'999), 10'000u);
}

TEST(HashIndex, DuplicateKeyRejected) {
  HashIndex index;
  index.insert(5, 1);
  EXPECT_THROW(index.insert(5, 2), ContractViolation);
}

// ---------------------------------------------------------------------------
// Volcano engine + scan equivalence
// ---------------------------------------------------------------------------

class AccessPathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    YeltGenConfig config;
    config.trials = 500;
    config.mean_events_per_year = 6.0;
    config.seed = 21;
    yelt_ = generate_yelt(200, config);

    std::vector<EltRow> rows;
    for (EventId e = 0; e < 200; e += 3) {
      rows.push_back({e, 5.0 + e, 1.0, 1000.0 + e});
    }
    elt_ = EventLossTable::from_rows(std::move(rows));
  }

  YearEventLossTable yelt_;
  EventLossTable elt_;
};

TEST_F(AccessPathFixture, VolcanoQueryMatchesColumnarScan) {
  // Row-store plan: scan -> index join -> hash aggregate.
  const RowYelt row_yelt(yelt_);
  const RowElt row_elt(elt_);
  auto scan = std::make_unique<YeltScanOp>(row_yelt);
  auto join = std::make_unique<IndexJoinOp>(std::move(scan), row_elt);
  HashAggOp agg(std::move(join), /*key_col=*/0, /*value_col=*/1);
  const auto rdb_result = run_group_query(agg);

  // Columnar paths.
  const auto lut = build_dense_loss_lut(elt_, 200);
  const auto dense = scan_aggregate_dense(yelt_, lut);
  const auto sorted = scan_aggregate_sorted(yelt_, elt_);

  ASSERT_EQ(dense.size(), yelt_.trials());
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_DOUBLE_EQ(dense[t], sorted[t]) << "trial " << t;
    const auto it = rdb_result.find(t);
    const double rdb = it == rdb_result.end() ? 0.0 : it->second;
    ASSERT_NEAR(rdb, dense[t], 1e-9) << "trial " << t;
  }
}

TEST_F(AccessPathFixture, RowTablesPreserveCardinality) {
  const RowYelt row_yelt(yelt_);
  EXPECT_EQ(row_yelt.rows().size(), yelt_.entries());
  const RowElt row_elt(elt_);
  EXPECT_EQ(row_elt.rows().size(), elt_.size());
  EXPECT_EQ(row_elt.index().size(), elt_.size());
}

TEST_F(AccessPathFixture, FilterOpDropsRows) {
  const RowYelt row_yelt(yelt_);
  auto scan = std::make_unique<YeltScanOp>(row_yelt);
  FilterOp filter(std::move(scan), [](const Tuple& t) { return t[1] < 50.0; });
  filter.open();
  Tuple row;
  std::size_t count = 0;
  while (filter.next(row)) {
    EXPECT_LT(row[1], 50.0);
    ++count;
  }
  filter.close();
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, yelt_.entries());
}

TEST_F(AccessPathFixture, HashAggRequiresOpen) {
  const RowYelt row_yelt(yelt_);
  auto scan = std::make_unique<YeltScanOp>(row_yelt);
  HashAggOp agg(std::move(scan), 0, 1);
  Tuple row;
  EXPECT_THROW((void)agg.next(row), ContractViolation);
}

TEST(DenseLut, MissingEventsMapToZero) {
  const auto elt = EventLossTable::from_rows({{3, 10.0, 1.0, 50.0}});
  const auto lut = build_dense_loss_lut(elt, 10);
  ASSERT_EQ(lut.size(), 10u);
  EXPECT_DOUBLE_EQ(lut[3], 10.0);
  EXPECT_DOUBLE_EQ(lut[0], 0.0);
  EXPECT_DOUBLE_EQ(lut[9], 0.0);
}

TEST(DenseLut, CatalogueTooSmallRejected) {
  const auto elt = EventLossTable::from_rows({{9, 10.0, 1.0, 50.0}});
  EXPECT_THROW((void)build_dense_loss_lut(elt, 5), ContractViolation);
}

}  // namespace
}  // namespace riskan::data
