// Pipeline tables: ELT, YELT, YLT, YELLT stream, and the E1 volume model.
#include <gtest/gtest.h>

#include <numeric>

#include "data/elt.hpp"
#include "data/table_stats.hpp"
#include "data/yellt.hpp"
#include "data/yelt.hpp"
#include "data/ylt.hpp"
#include "util/require.hpp"

namespace riskan::data {
namespace {

EventLossTable make_elt() {
  return EventLossTable::from_rows({
      {5, 100.0, 30.0, 500.0},
      {2, 50.0, 10.0, 200.0},
      {9, 75.0, 20.0, 400.0},
  });
}

TEST(Elt, SortsByEventId) {
  const auto elt = make_elt();
  ASSERT_EQ(elt.size(), 3u);
  EXPECT_EQ(elt.event_ids()[0], 2u);
  EXPECT_EQ(elt.event_ids()[1], 5u);
  EXPECT_EQ(elt.event_ids()[2], 9u);
  EXPECT_DOUBLE_EQ(elt.mean_loss()[0], 50.0);
}

TEST(Elt, FindHitsAndMisses) {
  const auto elt = make_elt();
  EXPECT_EQ(elt.find(2), 0u);
  EXPECT_EQ(elt.find(5), 1u);
  EXPECT_EQ(elt.find(9), 2u);
  EXPECT_EQ(elt.find(0), EventLossTable::npos);
  EXPECT_EQ(elt.find(6), EventLossTable::npos);
  EXPECT_EQ(elt.find(100), EventLossTable::npos);
}

TEST(Elt, RowAccessor) {
  const auto elt = make_elt();
  const auto row = elt.row(1);
  EXPECT_EQ(row.event_id, 5u);
  EXPECT_DOUBLE_EQ(row.mean_loss, 100.0);
  EXPECT_DOUBLE_EQ(row.sigma_loss, 30.0);
  EXPECT_DOUBLE_EQ(row.exposure, 500.0);
  EXPECT_THROW((void)elt.row(3), ContractViolation);
}

TEST(Elt, RejectsDuplicatesAndBadRows) {
  EXPECT_THROW(EventLossTable::from_rows({{1, 10.0, 1.0, 20.0}, {1, 5.0, 1.0, 20.0}}),
               ContractViolation);
  EXPECT_THROW(EventLossTable::from_rows({{1, -1.0, 1.0, 20.0}}), ContractViolation);
  EXPECT_THROW(EventLossTable::from_rows({{1, 10.0, 1.0, 5.0}}), ContractViolation);
}

TEST(Elt, TotalsAndBytes) {
  const auto elt = make_elt();
  EXPECT_DOUBLE_EQ(elt.total_mean_loss(), 225.0);
  EXPECT_EQ(elt.byte_size(), 3 * (sizeof(EventId) + 3 * sizeof(Money)));
  const EventLossTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.total_mean_loss(), 0.0);
}

TEST(Yelt, BuilderProducesCsrLayout) {
  YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(3, 10);
  builder.add(7, 200);
  builder.begin_trial();  // empty trial
  builder.begin_trial();
  builder.add(1, 364);
  const auto yelt = builder.finish();

  ASSERT_EQ(yelt.trials(), 3u);
  EXPECT_EQ(yelt.entries(), 3u);
  EXPECT_EQ(yelt.trial_size(0), 2u);
  EXPECT_EQ(yelt.trial_size(1), 0u);
  EXPECT_EQ(yelt.trial_size(2), 1u);
  EXPECT_EQ(yelt.trial_events(0)[1], 7u);
  EXPECT_EQ(yelt.trial_days(2)[0], 364);
  EXPECT_THROW((void)yelt.trial_events(3), ContractViolation);
}

TEST(Yelt, BuilderRejectsMisuse) {
  YearEventLossTable::Builder builder;
  EXPECT_THROW(builder.add(1, 0), ContractViolation);  // add before begin
  builder.begin_trial();
  EXPECT_THROW(builder.add(1, 365), ContractViolation);  // day out of range
}

TEST(Yelt, GeneratorRespectsConfig) {
  YeltGenConfig config;
  config.trials = 2'000;
  config.mean_events_per_year = 8.0;
  config.seed = 11;
  const auto yelt = generate_yelt(500, config);

  EXPECT_EQ(yelt.trials(), 2'000u);
  EXPECT_NEAR(yelt.mean_events_per_trial(), 8.0, 0.3);
  for (const auto event : yelt.events()) {
    EXPECT_LT(event, 500u);
  }
  for (const auto day : yelt.days()) {
    EXPECT_LT(day, 365);
  }
}

TEST(Yelt, GeneratorDeterministicInSeed) {
  YeltGenConfig config;
  config.trials = 100;
  config.seed = 5;
  const auto a = generate_yelt(100, config);
  const auto b = generate_yelt(100, config);
  ASSERT_EQ(a.entries(), b.entries());
  for (std::size_t i = 0; i < a.entries(); ++i) {
    ASSERT_EQ(a.events()[i], b.events()[i]);
  }
  config.seed = 6;
  const auto c = generate_yelt(100, config);
  EXPECT_NE(a.entries(), c.entries());  // overwhelmingly likely
}

TEST(Yelt, PowerLawRatesSkewTowardLowIds) {
  YeltGenConfig config;
  config.trials = 5'000;
  config.mean_events_per_year = 10.0;
  const auto yelt = generate_yelt(1'000, config);
  std::uint64_t low = 0;
  std::uint64_t high = 0;
  for (const auto event : yelt.events()) {
    (event < 100 ? low : high) += 1;
  }
  EXPECT_GT(low, high / 4);  // the first decile carries outsized mass
}

TEST(Yelt, ByteSizeAccounting) {
  YeltGenConfig config;
  config.trials = 10;
  const auto yelt = generate_yelt(50, config);
  const auto expected = (yelt.trials() + 1) * sizeof(std::uint64_t) +
                        yelt.entries() * (sizeof(EventId) + sizeof(std::uint16_t));
  EXPECT_EQ(yelt.byte_size(), expected);
}

TEST(Ylt, ArithmeticAndInvariants) {
  YearLossTable a(4, "a");
  a[0] = 1.0;
  a[1] = 2.0;
  a[2] = 3.0;
  a[3] = 4.0;
  YearLossTable b(4, "b");
  b[0] = 10.0;

  a += b;
  EXPECT_DOUBLE_EQ(a[0], 11.0);
  EXPECT_DOUBLE_EQ(a.total(), 20.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 11.0);

  a *= 0.5;
  EXPECT_DOUBLE_EQ(a[3], 2.0);
  EXPECT_EQ(a.byte_size(), 4 * sizeof(Money));
}

TEST(Ylt, MismatchedTrialCountsRejected) {
  YearLossTable a(4);
  YearLossTable b(5);
  EXPECT_THROW(a += b, ContractViolation);
}

TEST(Ylt, EmptyTableBehaviour) {
  const YearLossTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);
}

// ---------------------------------------------------------------------------
// YELLT stream
// ---------------------------------------------------------------------------

class YelltFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    YearEventLossTable::Builder builder;
    builder.begin_trial();
    builder.add(0, 1);
    builder.add(1, 2);
    builder.begin_trial();
    builder.add(1, 3);
    yelt_ = builder.finish();

    elts_.push_back(EventLossTable::from_rows({{0, 100.0, 10.0, 300.0}}));
    elts_.push_back(
        EventLossTable::from_rows({{0, 40.0, 4.0, 100.0}, {1, 60.0, 6.0, 200.0}}));
  }

  YearEventLossTable yelt_;
  std::vector<EventLossTable> elts_;
};

TEST_F(YelltFixture, CountMatchesEnumeration) {
  const YelltStream stream(yelt_, elts_, /*locations=*/4);
  // Trial 0: event 0 hits contracts {0,1} -> 2; event 1 hits {1} -> 1.
  // Trial 1: event 1 hits {1} -> 1. Total contract-hits = 4; x4 locations.
  EXPECT_EQ(stream.count_entries(), 16u);
  std::uint64_t seen = 0;
  const auto emitted = stream.for_each([&seen](const YelltRecord&) { ++seen; });
  EXPECT_EQ(emitted, 16u);
  EXPECT_EQ(seen, 16u);
}

TEST_F(YelltFixture, LocationMarginalsSumToEventLoss) {
  const YelltStream stream(yelt_, elts_, 8);
  // Sum location shares for (trial 0, event 0, contract 1): must equal the
  // ELT mean of contract 1 for event 0.
  Money sum = 0.0;
  stream.for_each([&sum](const YelltRecord& rec) {
    if (rec.trial == 0 && rec.event == 0 && rec.contract == 1) {
      sum += rec.loss;
    }
  });
  EXPECT_NEAR(sum, 40.0, 1e-9);
}

TEST_F(YelltFixture, MaterialiseRespectsCap) {
  const YelltStream stream(yelt_, elts_, 4);
  const auto records = stream.materialise(100);
  EXPECT_EQ(records.size(), 16u);
  EXPECT_THROW((void)stream.materialise(4), ContractViolation);
}

TEST_F(YelltFixture, StreamIsDeterministic) {
  const YelltStream stream(yelt_, elts_, 4, /*seed=*/123);
  const auto a = stream.materialise();
  const auto b = stream.materialise();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].loss, b[i].loss);
  }
}

// ---------------------------------------------------------------------------
// E1 volume model — the paper's arithmetic
// ---------------------------------------------------------------------------

TEST(VolumeModel, ReproducesPaperHeadline) {
  const VolumeModel model(PipelineSizing::paper_example());
  // "the Year-Event-Location-Loss Table has over 5x10^16 entries"
  EXPECT_DOUBLE_EQ(model.yellt_entries(), 5e16);
  EXPECT_GE(model.yellt_entries(), 5e16);
}

TEST(VolumeModel, YelltToYeltRatioIsLocationAxis) {
  const VolumeModel model(PipelineSizing::paper_example());
  // "The YELT is generally 1000 times smaller than the YELLT"
  EXPECT_DOUBLE_EQ(model.yellt_over_yelt(), 1'000.0);
}

TEST(VolumeModel, YeltToYltFootprintRatioNearThousand) {
  const VolumeModel model(PipelineSizing::paper_example());
  // "...and 1000 times bigger than the YLT" — via the ~1k-event contract
  // footprint (1% of a 100k catalogue).
  EXPECT_DOUBLE_EQ(model.yelt_over_ylt_footprint(), 1'000.0);
  // The raw event axis is the dense upper bound.
  EXPECT_DOUBLE_EQ(model.yelt_over_ylt_dense(), 100'000.0);
}

TEST(VolumeModel, ScalingLawsComposeMultiplicatively) {
  PipelineSizing s = PipelineSizing::scaled_down();
  const VolumeModel small(s);
  PipelineSizing doubled = s;
  doubled.trials *= 2;
  const VolumeModel big(doubled);
  EXPECT_DOUBLE_EQ(big.yellt_entries(), 2.0 * small.yellt_entries());
  EXPECT_DOUBLE_EQ(big.yelt_entries(), 2.0 * small.yelt_entries());
  EXPECT_DOUBLE_EQ(big.ylt_entries(), 2.0 * small.ylt_entries());
}

TEST(VolumeModel, BytesScaleWithEntries) {
  const VolumeModel model(PipelineSizing::paper_example());
  EXPECT_DOUBLE_EQ(model.yellt_bytes(),
                   model.yellt_entries() * static_cast<double>(kYelltRecordBytes));
  EXPECT_GT(model.yellt_bytes(), 1e15);  // petabyte-class, the paper's point
  EXPECT_LT(model.ylt_bytes(), 1e10);    // while the YLT is gigabyte-class
}

TEST(VolumeModel, RowsTableIsComplete) {
  const VolumeModel model(PipelineSizing::paper_example());
  const auto rows = model.rows();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_GT(row.entries, 0.0);
    EXPECT_GT(row.bytes, 0.0);
    EXPECT_FALSE(row.table.empty());
  }
}

TEST(VolumeModel, RejectsBadSizing) {
  PipelineSizing s;
  s.elt_hit_ratio = 0.0;
  EXPECT_THROW(VolumeModel{s}, ContractViolation);
  PipelineSizing z;
  z.contracts = 0;
  EXPECT_THROW(VolumeModel{z}, ContractViolation);
}

}  // namespace
}  // namespace riskan::data
