// The aggregate-analysis engine: hand-computed oracles, backend
// equivalence (the consistent-lens guarantee), chunking invariance, and
// secondary-uncertainty statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate_engine.hpp"
#include "core/secondary.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

/// One contract, one layer, deterministic ELT; YELT small enough to check
/// by hand.
finance::Portfolio oracle_portfolio() {
  auto elt = data::EventLossTable::from_rows({
      {1, 100.0, 0.0, 100.0},  // sigma 0: secondary sampling is degenerate
      {2, 250.0, 0.0, 250.0},
      {3, 50.0, 0.0, 50.0},
  });
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 60.0;
  layer.terms.occ_limit = 150.0;
  layer.terms.agg_retention = 0.0;
  layer.terms.agg_limit = 200.0;
  layer.terms.share = 0.5;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt), {layer}));
  return portfolio;
}

data::YearEventLossTable oracle_yelt() {
  data::YearEventLossTable::Builder builder;
  builder.begin_trial();  // trial 0: events 1, 2
  builder.add(1, 10);
  builder.add(2, 20);
  builder.begin_trial();  // trial 1: event 3 (below retention), event 99 (no loss)
  builder.add(3, 5);
  builder.add(99, 6);
  builder.begin_trial();  // trial 2: empty
  builder.begin_trial();  // trial 3: event 2 twice (aggregate cap bites)
  builder.add(2, 1);
  builder.add(2, 2);
  return builder.finish();
}

TEST(Engine, HandComputedOracle) {
  EngineConfig config;
  config.backend = Backend::Sequential;
  config.secondary_uncertainty = false;
  const auto result = run_aggregate_analysis(oracle_portfolio(), oracle_yelt(), config);

  // Trial 0: occ(100)=40, occ(250)=150 -> annual 190 -> agg 190 -> x0.5 = 95.
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[0], 95.0);
  // Trial 1: occ(50)=0 (below retention), event 99 not in ELT -> 0.
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[1], 0.0);
  // Trial 2: empty year -> 0.
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[2], 0.0);
  // Trial 3: 150 + 150 = 300 -> agg cap 200 -> x0.5 = 100.
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[3], 100.0);

  // Occurrence (OEP) view: per-trial max net occurrence loss.
  EXPECT_DOUBLE_EQ(result.portfolio_occurrence_ylt[0], 75.0);  // max(40,150)*0.5
  EXPECT_DOUBLE_EQ(result.portfolio_occurrence_ylt[3], 75.0);
  EXPECT_DOUBLE_EQ(result.portfolio_occurrence_ylt[1], 0.0);

  // Telemetry.
  EXPECT_EQ(result.occurrences_processed, 6u);
  EXPECT_EQ(result.elt_lookups, 5u);  // event 99 misses
  ASSERT_EQ(result.contract_ylts.size(), 1u);
  EXPECT_DOUBLE_EQ(result.contract_ylts[0][0], 95.0);
}

TEST(Engine, OepNeverExceedsAep) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 10;
  pg.catalog_events = 500;
  pg.elt_rows = 100;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 1'000;
  const auto yelt = data::generate_yelt(500, yg);

  EngineConfig config;
  const auto result = run_aggregate_analysis(portfolio, yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_LE(result.portfolio_occurrence_ylt[t], result.portfolio_ylt[t] + 1e-9);
  }
}

class BackendEquivalence : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    finance::PortfolioGenConfig pg;
    pg.contracts = 6;
    pg.catalog_events = 300;
    pg.elt_rows = 80;
    pg.layers_per_contract = 2;
    portfolio_ = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = 700;
    yg.mean_events_per_year = 9.0;
    yelt_ = data::generate_yelt(300, yg);
  }

  finance::Portfolio portfolio_;
  data::YearEventLossTable yelt_;
};

TEST_P(BackendEquivalence, AllBackendsProduceIdenticalBits) {
  const bool secondary = GetParam();
  EngineConfig config;
  config.secondary_uncertainty = secondary;
  config.seed = 909;

  config.backend = Backend::Sequential;
  const auto seq = run_aggregate_analysis(portfolio_, yelt_, config);

  config.backend = Backend::Threaded;
  config.trial_grain = 37;  // deliberately odd grain
  const auto thr = run_aggregate_analysis(portfolio_, yelt_, config);

  config.backend = Backend::DeviceSim;
  config.device_block_dim = 64;
  const auto dev = run_aggregate_analysis(portfolio_, yelt_, config);

  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(seq.portfolio_ylt[t], thr.portfolio_ylt[t]) << "trial " << t;
    ASSERT_EQ(seq.portfolio_ylt[t], dev.portfolio_ylt[t]) << "trial " << t;
    ASSERT_EQ(seq.portfolio_occurrence_ylt[t], dev.portfolio_occurrence_ylt[t]);
    ASSERT_EQ(seq.reinstatement_premium[t], dev.reinstatement_premium[t]);
  }
  for (std::size_t c = 0; c < portfolio_.size(); ++c) {
    for (TrialId t = 0; t < yelt_.trials(); ++t) {
      ASSERT_EQ(seq.contract_ylts[c][t], thr.contract_ylts[c][t]);
      ASSERT_EQ(seq.contract_ylts[c][t], dev.contract_ylts[c][t]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SecondaryOnOff, BackendEquivalence, ::testing::Bool());

TEST_F(BackendEquivalence, GrainDoesNotChangeResults) {
  EngineConfig config;
  config.backend = Backend::Threaded;
  config.trial_grain = 1;
  const auto fine = run_aggregate_analysis(portfolio_, yelt_, config);
  config.trial_grain = 512;
  const auto coarse = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(fine.portfolio_ylt[t], coarse.portfolio_ylt[t]);
  }
}

TEST_F(BackendEquivalence, DeviceEltChunkingIsExact) {
  EngineConfig config;
  config.backend = Backend::Sequential;
  const auto seq = run_aggregate_analysis(portfolio_, yelt_, config);

  // Force many tiny constant-memory chunks: results must not move a bit.
  config.backend = Backend::DeviceSim;
  config.device_elt_chunk_rows = 7;
  const auto dev = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(seq.portfolio_ylt[t], dev.portfolio_ylt[t]);
  }
}

TEST_F(BackendEquivalence, DeviceBlockDimIsExact) {
  EngineConfig config;
  config.backend = Backend::DeviceSim;
  config.device_block_dim = 16;
  const auto a = run_aggregate_analysis(portfolio_, yelt_, config);
  config.device_block_dim = 256;
  const auto b = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
}

TEST_F(BackendEquivalence, TrialBasePartitioningIsExact) {
  // Split the YELT in two, run halves with trial_base, and compare to the
  // monolithic run — the MapReduce backend's correctness property.
  EngineConfig config;
  config.backend = Backend::Sequential;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto whole = run_aggregate_analysis(portfolio_, yelt_, config);

  const TrialId split = yelt_.trials() / 2;
  data::YearEventLossTable::Builder first(split);
  data::YearEventLossTable::Builder second(yelt_.trials() - split);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    auto& builder = t < split ? first : second;
    builder.begin_trial();
    const auto events = yelt_.trial_events(t);
    const auto days = yelt_.trial_days(t);
    for (std::size_t i = 0; i < events.size(); ++i) {
      builder.add(events[i], days[i]);
    }
  }
  const auto lo = first.finish();
  const auto hi = second.finish();

  const auto res_lo = run_aggregate_analysis(portfolio_, lo, config);
  config.trial_base = split;
  const auto res_hi = run_aggregate_analysis(portfolio_, hi, config);

  for (TrialId t = 0; t < split; ++t) {
    ASSERT_EQ(whole.portfolio_ylt[t], res_lo.portfolio_ylt[t]);
  }
  for (TrialId t = split; t < yelt_.trials(); ++t) {
    ASSERT_EQ(whole.portfolio_ylt[t], res_hi.portfolio_ylt[t - split]);
  }
}

TEST_F(BackendEquivalence, SecondaryUncertaintyPreservesMeanLoss) {
  // With secondary sampling on, the expected YLT mean should approach the
  // secondary-off mean (beta sampling is mean-preserving).
  EngineConfig off;
  off.backend = Backend::Sequential;
  off.secondary_uncertainty = false;
  const auto base = run_aggregate_analysis(portfolio_, yelt_, off);

  EngineConfig on = off;
  on.secondary_uncertainty = true;
  const auto sampled = run_aggregate_analysis(portfolio_, yelt_, on);

  // Layer terms are convex, so means need not match exactly; they must be
  // the same order of magnitude and positively correlated.
  EXPECT_GT(sampled.portfolio_ylt.mean(), 0.1 * base.portfolio_ylt.mean());
  EXPECT_LT(sampled.portfolio_ylt.mean(), 10.0 * base.portfolio_ylt.mean());
}

TEST_F(BackendEquivalence, RunsAreReproducibleAcrossCalls) {
  EngineConfig config;
  config.backend = Backend::Threaded;
  const auto a = run_aggregate_analysis(portfolio_, yelt_, config);
  const auto b = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
}

TEST_F(BackendEquivalence, SeedChangesSecondarySamples) {
  EngineConfig config;
  config.backend = Backend::Sequential;
  config.secondary_uncertainty = true;
  config.seed = 1;
  const auto a = run_aggregate_analysis(portfolio_, yelt_, config);
  config.seed = 2;
  const auto b = run_aggregate_analysis(portfolio_, yelt_, config);
  int differing = 0;
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    if (a.portfolio_ylt[t] != b.portfolio_ylt[t]) {
      ++differing;
    }
  }
  EXPECT_GT(differing, static_cast<int>(yelt_.trials() / 4));
}

TEST_F(BackendEquivalence, KeepContractYltsOffSavesMemoryNotResults) {
  EngineConfig config;
  config.keep_contract_ylts = false;
  const auto slim = run_aggregate_analysis(portfolio_, yelt_, config);
  EXPECT_TRUE(slim.contract_ylts.empty());
  config.keep_contract_ylts = true;
  const auto full = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(slim.portfolio_ylt[t], full.portfolio_ylt[t]);
  }
}

TEST_F(BackendEquivalence, ContractYltsSumToPortfolio) {
  EngineConfig config;
  config.secondary_uncertainty = false;
  const auto result = run_aggregate_analysis(portfolio_, yelt_, config);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    Money sum = 0.0;
    for (const auto& ylt : result.contract_ylts) {
      sum += ylt[t];
    }
    ASSERT_NEAR(sum, result.portfolio_ylt[t], 1e-6);
  }
}

TEST(Engine, RunLayerMatchesPortfolioPath) {
  const auto portfolio = oracle_portfolio();
  const auto yelt = oracle_yelt();
  EngineConfig config;
  config.secondary_uncertainty = false;
  const auto losses =
      run_layer(portfolio.contract(0), portfolio.contract(0).layers()[0], yelt, config);
  ASSERT_EQ(losses.size(), 4u);
  EXPECT_DOUBLE_EQ(losses[0], 95.0);
  EXPECT_DOUBLE_EQ(losses[3], 100.0);
}

TEST(Engine, RejectsEmptyInputs) {
  const finance::Portfolio empty;
  const auto yelt = oracle_yelt();
  EXPECT_THROW((void)run_aggregate_analysis(empty, yelt, {}), ContractViolation);
  const data::YearEventLossTable no_trials;
  EXPECT_THROW((void)run_aggregate_analysis(oracle_portfolio(), no_trials, {}),
               ContractViolation);
}

TEST(Engine, ReinstatementPremiumFlows) {
  // Oracle trial 3 consumes 200 of aggregate limit (occ limit 150,
  // reinstatements on the generated portfolios; build one explicitly here).
  auto elt = data::EventLossTable::from_rows({{2, 250.0, 0.0, 250.0}});
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 60.0;
  layer.terms.occ_limit = 150.0;
  layer.terms.agg_limit = 300.0;
  layer.terms.share = 1.0;
  layer.reinstatements.count = 1;
  layer.reinstatements.premium_rate = 1.0;
  layer.upfront_premium = 10.0;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt), {layer}));

  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(2, 1);
  builder.add(2, 2);  // consumes 300 aggregate: 150 beyond the first limit
  const auto yelt = builder.finish();

  EngineConfig config;
  config.secondary_uncertainty = false;
  const auto result = run_aggregate_analysis(portfolio, yelt, config);
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[0], 300.0);
  // limit consumed = 300; reinstatable portion = min(300, 1*150) = 150 ->
  // full reinstatement premium of 10.
  EXPECT_DOUBLE_EQ(result.reinstatement_premium[0], 10.0);
}

TEST(SecondarySampler, MeanConvergesToEltMean) {
  const auto elt = data::EventLossTable::from_rows({{1, 400.0, 120.0, 1000.0}});
  const SecondarySampler sampler(elt);
  const Philox4x32 philox(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    auto stream = occurrence_stream(philox, 0, 0, static_cast<TrialId>(i), 0);
    const double x = sampler.sample(0, stream);
    sum += x;
    sum_sq += x * x;
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1000.0);
  }
  const double mean = sum / n;
  const double stdev = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 400.0, 2.0);
  EXPECT_NEAR(stdev, 120.0, 3.0);
}

TEST(SecondarySampler, DegenerateRowsAreDeterministic) {
  const auto elt = data::EventLossTable::from_rows({
      {1, 100.0, 0.0, 100.0},   // mean == exposure -> pinned
      {2, 50.0, 0.0, 500.0},    // sigma 0 -> deterministic at mean
  });
  const SecondarySampler sampler(elt);
  const Philox4x32 philox(1);
  auto s1 = occurrence_stream(philox, 0, 0, 0, 0);
  auto s2 = occurrence_stream(philox, 0, 0, 1, 0);
  EXPECT_DOUBLE_EQ(sampler.sample(0, s1), 100.0);
  EXPECT_DOUBLE_EQ(sampler.sample(1, s2), 50.0);
}

TEST(Backend, NamesAreStable) {
  EXPECT_STREQ(to_string(Backend::Sequential), "sequential");
  EXPECT_STREQ(to_string(Backend::Threaded), "threaded");
  EXPECT_STREQ(to_string(Backend::DeviceSim), "device-sim");
}

}  // namespace
}  // namespace riskan::core
