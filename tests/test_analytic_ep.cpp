// Analytic occurrence-EP curve, and its agreement with the simulated OEP —
// the end-to-end validation of generator + engine against closed form.
#include <gtest/gtest.h>

#include <cmath>

#include "catmod/analytic_ep.hpp"
#include "catmod/event_catalog.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "util/distributions.hpp"
#include "util/require.hpp"

namespace riskan::catmod {
namespace {

/// A tiny catalogue with hand-set rates for oracle checks.
EventCatalog toy_catalog() {
  CatalogConfig config;
  config.events = 3;
  auto catalog = EventCatalog::generate(config);
  // Overwrite the generated rates deterministically via const_cast-free
  // regeneration is not exposed; instead build expectations from whatever
  // rates were generated. For the oracle we only need *known* rates, so we
  // use the generated ones read back through the accessor.
  return catalog;
}

TEST(AnalyticEp, ClosedFormOracle) {
  const auto catalog = toy_catalog();
  // ELT: event 0 loses 100, event 1 loses 300, event 2 loses 200.
  const auto elt = data::EventLossTable::from_rows({
      {0, 100.0, 0.0, 100.0},
      {1, 300.0, 0.0, 300.0},
      {2, 200.0, 0.0, 200.0},
  });
  const double r0 = catalog.event(0).annual_rate;
  const double r1 = catalog.event(1).annual_rate;
  const double r2 = catalog.event(2).annual_rate;

  const std::vector<Money> thresholds{50.0, 150.0, 250.0, 400.0};
  const auto curve = analytic_oep(catalog, elt, thresholds);
  ASSERT_EQ(curve.size(), 4u);

  // Above 50: all three events. Above 150: events 1,2. Above 250: event 1.
  // Above 400: none.
  EXPECT_NEAR(curve[0].annual_rate_above, r0 + r1 + r2, 1e-12);
  EXPECT_NEAR(curve[1].annual_rate_above, r1 + r2, 1e-12);
  EXPECT_NEAR(curve[2].annual_rate_above, r1, 1e-12);
  EXPECT_DOUBLE_EQ(curve[3].annual_rate_above, 0.0);

  for (const auto& point : curve) {
    EXPECT_NEAR(point.exceedance_probability, 1.0 - std::exp(-point.annual_rate_above),
                1e-15);
  }
  EXPECT_TRUE(std::isinf(curve[3].return_period_years));
}

TEST(AnalyticEp, CurveIsMonotone) {
  CatalogConfig config;
  config.events = 2'000;
  const auto catalog = EventCatalog::generate(config);
  std::vector<data::EltRow> rows;
  for (EventId e = 0; e < 2'000; e += 2) {
    rows.push_back({e, 1'000.0 * (e + 1), 0.0, 2'000.0 * (e + 1)});
  }
  const auto elt = data::EventLossTable::from_rows(std::move(rows));

  std::vector<Money> thresholds;
  for (double x = 1e3; x < 2e6; x *= 1.5) {
    thresholds.push_back(x);
  }
  const auto curve = analytic_oep(catalog, elt, thresholds);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].annual_rate_above, curve[i - 1].annual_rate_above);
    EXPECT_LE(curve[i].exceedance_probability, curve[i - 1].exceedance_probability);
    EXPECT_GE(curve[i].return_period_years, curve[i - 1].return_period_years);
  }
}

TEST(AnalyticEp, InverseLookupConsistent) {
  CatalogConfig config;
  config.events = 1'000;
  const auto catalog = EventCatalog::generate(config);
  std::vector<data::EltRow> rows;
  for (EventId e = 0; e < 1'000; ++e) {
    rows.push_back({e, 500.0 * (e + 1), 0.0, 1'000.0 * (e + 1)});
  }
  const auto elt = data::EventLossTable::from_rows(std::move(rows));

  for (const double years : {5.0, 25.0, 100.0}) {
    const Money loss = analytic_oep_loss_at(catalog, elt, years);
    // The curve evaluated just below that loss must have RP <= years, and
    // just above it RP >= years (within the discreteness of the ELT).
    const std::vector<Money> probe{loss * 0.99, loss * 1.01};
    const auto curve = analytic_oep(catalog, elt, probe);
    EXPECT_LE(curve[0].return_period_years, years * 1.1) << years;
    EXPECT_GE(curve[1].return_period_years, years * 0.9) << years;
  }
}

TEST(AnalyticEp, SimulatedOepMatchesClosedForm) {
  // The end-to-end chain: catalogue rates -> simulate_yelt -> engine OEP
  // must agree with the closed form at moderate return periods.
  CatalogConfig cc;
  cc.events = 800;
  cc.seed = 77;
  const auto catalog = EventCatalog::generate(cc);

  std::vector<data::EltRow> rows;
  Xoshiro256ss rng(5);
  for (EventId e = 0; e < 800; ++e) {
    const Money mean = sample_truncated_pareto(rng, 1.2, 1e4, 1e8);
    rows.push_back({e, mean, 0.0, mean * 2.0});
  }
  const auto elt = data::EventLossTable::from_rows(std::move(rows));

  // Unlimited ground-up layer so the engine's OEP is the raw occurrence max.
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 0.0;
  layer.terms.occ_limit = 1e18;
  layer.terms.agg_limit = 1e18;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, elt, {layer}));

  CatalogYeltConfig yc;
  yc.trials = 40'000;
  yc.seed = 11;
  const auto yelt = simulate_yelt(catalog, yc);

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.backend = core::Backend::Threaded;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);

  for (const double years : {5.0, 10.0, 25.0}) {
    const Money analytic = analytic_oep_loss_at(catalog, elt, years);
    const Money simulated =
        core::probable_maximum_loss(result.portfolio_occurrence_ylt, years);
    EXPECT_NEAR(simulated / analytic, 1.0, 0.15)
        << "return period " << years << ": analytic " << analytic << " vs simulated "
        << simulated;
  }
}

TEST(AnalyticEp, ContractsEnforced) {
  CatalogConfig config;
  config.events = 10;
  const auto catalog = EventCatalog::generate(config);
  const data::EventLossTable empty;
  const std::vector<Money> thresholds{1.0};
  EXPECT_THROW((void)analytic_oep(catalog, empty, thresholds), ContractViolation);
  const auto elt = data::EventLossTable::from_rows({{99, 1.0, 0.0, 2.0}});
  EXPECT_THROW((void)analytic_oep(catalog, elt, thresholds), ContractViolation);
}

}  // namespace
}  // namespace riskan::catmod
