// End-to-end integration: the full three-stage pipeline of the paper,
// catalogue + exposure -> ELT -> aggregate analysis -> metrics -> DFA ->
// warehouse, with cross-stage invariants.
#include <gtest/gtest.h>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "core/pricer.hpp"
#include "data/serialize.hpp"
#include "dfa/dfa_engine.hpp"
#include "mapreduce/aggregate_job.hpp"
#include "util/bytes.hpp"
#include "warehouse/cube.hpp"

namespace riskan {
namespace {

class FullPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Stage 1: catastrophe modelling.
    catmod::CatalogConfig cc;
    cc.events = 600;
    cc.seed = 31;
    catalog_ = new catmod::EventCatalog(catmod::EventCatalog::generate(cc));

    catmod::ExposureConfig ec;
    ec.sites = 400;
    ec.seed = 32;
    exposure_ = new catmod::ExposureDatabase(catmod::ExposureDatabase::generate(ec));

    elt_ = new data::EventLossTable(catmod::run_cat_model(*catalog_, *exposure_));

    // Build a small portfolio around the modelled ELT: three layers at
    // different attachment points on the same book.
    auto make_layer = [](LayerId id, double attach_factor) {
      finance::Layer layer;
      layer.id = id;
      Money scale = 0.0;
      for (const auto m : elt_->mean_loss()) {
        scale = std::max(scale, m);
      }
      layer.terms.occ_retention = scale * attach_factor;
      layer.terms.occ_limit = scale * 0.5;
      layer.terms.agg_limit = scale;
      layer.terms.share = 1.0;
      layer.upfront_premium = scale * 0.05;
      return layer;
    };
    finance::Portfolio portfolio;
    portfolio.add(finance::Contract(0, *elt_, {make_layer(0, 0.05)},
                                    Region::NorthAmerica, LineOfBusiness::Property,
                                    Peril::Earthquake));
    portfolio.add(finance::Contract(1, *elt_, {make_layer(0, 0.20)}, Region::Europe,
                                    LineOfBusiness::Marine, Peril::Hurricane));
    portfolio.add(finance::Contract(2, *elt_, {make_layer(0, 0.50)}, Region::Asia,
                                    LineOfBusiness::Energy, Peril::Flood));
    portfolio_ = new finance::Portfolio(std::move(portfolio));

    // Stage 2 input: the pre-simulated YELT from the catalogue's rates.
    catmod::CatalogYeltConfig yc;
    yc.trials = 2'000;
    yc.seed = 33;
    yelt_ = new data::YearEventLossTable(catmod::simulate_yelt(*catalog_, yc));
  }

  static void TearDownTestSuite() {
    delete catalog_;
    delete exposure_;
    delete elt_;
    delete portfolio_;
    delete yelt_;
    catalog_ = nullptr;
    exposure_ = nullptr;
    elt_ = nullptr;
    portfolio_ = nullptr;
    yelt_ = nullptr;
  }

  static catmod::EventCatalog* catalog_;
  static catmod::ExposureDatabase* exposure_;
  static data::EventLossTable* elt_;
  static finance::Portfolio* portfolio_;
  static data::YearEventLossTable* yelt_;
};

catmod::EventCatalog* FullPipeline::catalog_ = nullptr;
catmod::ExposureDatabase* FullPipeline::exposure_ = nullptr;
data::EventLossTable* FullPipeline::elt_ = nullptr;
finance::Portfolio* FullPipeline::portfolio_ = nullptr;
data::YearEventLossTable* FullPipeline::yelt_ = nullptr;

TEST_F(FullPipeline, Stage1ProducesUsableElt) {
  EXPECT_GT(elt_->size(), 10u);
  EXPECT_GT(elt_->total_mean_loss(), 0.0);
}

TEST_F(FullPipeline, Stage2LowerAttachmentMeansMoreLoss) {
  core::EngineConfig config;
  config.secondary_uncertainty = false;
  const auto result = core::run_aggregate_analysis(*portfolio_, *yelt_, config);
  ASSERT_EQ(result.contract_ylts.size(), 3u);
  // Contract 0 attaches lowest -> sees the most loss.
  EXPECT_GE(result.contract_ylts[0].total(), result.contract_ylts[1].total());
  EXPECT_GE(result.contract_ylts[1].total(), result.contract_ylts[2].total());
}

TEST_F(FullPipeline, Stage2ToStage3EndToEnd) {
  core::EngineConfig config;
  const auto stage2 = core::run_aggregate_analysis(*portfolio_, *yelt_, config);

  dfa::DfaEngine dfa_engine(dfa::standard_risk_sources(99), dfa::DfaConfig{});
  const auto stage3 = dfa_engine.run(stage2.portfolio_ylt);
  EXPECT_EQ(stage3.enterprise_ylt.trials(), yelt_->trials());
  EXPECT_GT(stage3.economic_capital, 0.0);

  const warehouse::RiskCube cube(*portfolio_, stage2);
  EXPECT_EQ(cube.total().contracts, 3u);
}

TEST_F(FullPipeline, FileBasedStageBoundariesRoundTrip) {
  // Stage boundaries as files: ELT and YELT written by one stage, read by
  // the next; results identical to the in-memory handoff.
  const std::string elt_path = "/tmp/riskan_integ_elt.bin";
  const std::string yelt_path = "/tmp/riskan_integ_yelt.bin";
  data::save_elt(*elt_, elt_path);
  data::save_yelt(*yelt_, yelt_path);
  const auto elt2 = data::load_elt(elt_path);
  const auto yelt2 = data::load_yelt(yelt_path);

  finance::Layer layer = portfolio_->contract(0).layers()[0];
  finance::Portfolio direct;
  direct.add(finance::Contract(0, *elt_, {layer}));
  finance::Portfolio via_files;
  via_files.add(finance::Contract(0, elt2, {layer}));

  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const auto a = core::run_aggregate_analysis(direct, *yelt_, config);
  const auto b = core::run_aggregate_analysis(via_files, yelt2, config);
  for (TrialId t = 0; t < yelt_->trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
  remove_file(elt_path);
  remove_file(yelt_path);
}

TEST_F(FullPipeline, MapReducePathAgreesWithInMemory) {
  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto in_memory = core::run_aggregate_analysis(*portfolio_, *yelt_, config);

  mapreduce::DfsConfig dfs_config;
  dfs_config.root_dir = "/tmp/riskan-dfs-integration";
  mapreduce::Dfs dfs(dfs_config);
  mapreduce::AggregateJobConfig job;
  job.trials_per_block = 333;
  const auto mr = mapreduce::run_aggregate_job(dfs, *portfolio_, *yelt_, job);

  for (TrialId t = 0; t < yelt_->trials(); ++t) {
    ASSERT_EQ(in_memory.portfolio_ylt[t], mr.portfolio_ylt[t]);
  }
}

TEST_F(FullPipeline, PricingQuoteFromModelledElt) {
  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const core::RealTimePricer pricer(*yelt_, config);
  const auto quote =
      pricer.price(portfolio_->contract(0), portfolio_->contract(0).layers()[0]);
  EXPECT_GT(quote.technical_premium, 0.0);
  EXPECT_GT(quote.rate_on_line, 0.0);
}

TEST_F(FullPipeline, MetricsChainIsCoherentAcrossStages) {
  core::EngineConfig config;
  const auto stage2 = core::run_aggregate_analysis(*portfolio_, *yelt_, config);
  const auto aep = core::summarise(stage2.portfolio_ylt);
  const auto oep = core::summarise(stage2.portfolio_occurrence_ylt);
  // Occurrence tail cannot exceed aggregate tail at matching levels.
  EXPECT_LE(oep.var_99, aep.var_99 + 1e-9);
  EXPECT_LE(oep.pml_250, aep.pml_250 + 1e-9);
  EXPECT_LE(oep.max_loss, aep.max_loss + 1e-9);
}

}  // namespace
}  // namespace riskan
