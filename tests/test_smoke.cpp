// Build smoke test: the whole stack links and a minimal pipeline runs.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"

namespace riskan {
namespace {

TEST(Smoke, TinyPipelineRuns) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 3;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  const auto portfolio = finance::generate_portfolio(pg);

  data::YeltGenConfig yg;
  yg.trials = 200;
  const auto yelt = data::generate_yelt(100, yg);

  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);

  EXPECT_EQ(result.portfolio_ylt.trials(), 200u);
  EXPECT_GE(result.portfolio_ylt.total(), 0.0);
  const auto summary = core::summarise(result.portfolio_ylt);
  EXPECT_GE(summary.tvar_99, summary.var_99);
}

}  // namespace
}  // namespace riskan
