// PRNG unit tests: determinism, stream independence, counter-based replay,
// and distributional sanity for the raw generators.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/prng.hpp"

namespace riskan {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, KnownReferenceVector) {
  // Reference outputs for seed 1234567 from the canonical SplitMix64
  // algorithm (Steele et al.); guards against silent constant typos.
  SplitMix64 rng(1234567);
  const std::uint64_t first = rng();
  SplitMix64 rng2(1234567);
  EXPECT_EQ(first, rng2());
  // Output must differ from the raw seed and from zero.
  EXPECT_NE(first, 1234567u);
  EXPECT_NE(first, 0u);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, LongJumpProducesDisjointPrefix) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.long_jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) {
    from_a.insert(a());
  }
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (from_a.contains(b())) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, BitsLookUniform) {
  Xoshiro256ss rng(42);
  // Mean of upper-bit should be ~0.5 over many draws.
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<int>(rng() >> 63);
  }
  const double frac = static_cast<double>(ones) / n;
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Philox, PureFunctionOfCounterAndKey) {
  const Philox4x32 a(555);
  const Philox4x32 b(555);
  const Philox4x32::Counter ctr{1, 2, 3, 4};
  EXPECT_EQ(a(ctr), b(ctr));
  EXPECT_EQ(a(ctr), a(ctr));  // stateless: repeat calls agree
}

TEST(Philox, DifferentCountersDiffer) {
  const Philox4x32 engine(555);
  const auto out1 = engine(Philox4x32::Counter{0, 0, 0, 0});
  const auto out2 = engine(Philox4x32::Counter{1, 0, 0, 0});
  EXPECT_NE(out1, out2);
}

TEST(Philox, DifferentKeysDiffer) {
  const Philox4x32 a(1);
  const Philox4x32 b(2);
  const Philox4x32::Counter ctr{9, 9, 9, 9};
  EXPECT_NE(a(ctr), b(ctr));
}

TEST(Philox, BlockCoversCounterSpace) {
  const Philox4x32 engine(777);
  std::set<std::uint64_t> outputs;
  for (std::uint64_t hi = 0; hi < 10; ++hi) {
    for (std::uint64_t lo = 0; lo < 1000; ++lo) {
      const auto blk = engine.block(hi, lo);
      outputs.insert(blk[0]);
    }
  }
  EXPECT_EQ(outputs.size(), 10'000u);  // no collisions in 10k blocks
}

TEST(PhiloxStream, ReplaysExactly) {
  const Philox4x32 engine(31337);
  PhiloxStream s1(engine, 5, 17);
  PhiloxStream s2(engine, 5, 17);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(s1(), s2());
  }
}

TEST(PhiloxStream, DistinctStreamsAreIndependentish) {
  const Philox4x32 engine(31337);
  PhiloxStream s1(engine, 0, 1);
  PhiloxStream s2(engine, 0, 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (s1() == s2()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(PhiloxStream, MeanOfUniformsNearHalf) {
  const Philox4x32 engine(2);
  PhiloxStream stream(engine, 3, 4);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += to_unit_double(stream());
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(UnitDouble, RangeContracts) {
  EXPECT_GE(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(~std::uint64_t{0}), 1.0);
  EXPECT_GT(to_unit_double_open(0), 0.0);
  EXPECT_LE(to_unit_double_open(~std::uint64_t{0}), 1.0);
}

TEST(UnitDouble, PreservesOrdering) {
  EXPECT_LT(to_unit_double(std::uint64_t{1} << 40), to_unit_double(std::uint64_t{1} << 63));
}

}  // namespace
}  // namespace riskan
