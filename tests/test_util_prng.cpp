// PRNG unit tests: determinism, stream independence, counter-based replay,
// and distributional sanity for the raw generators.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace riskan {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, KnownReferenceVector) {
  // Reference outputs for seed 1234567 from the canonical SplitMix64
  // algorithm (Steele et al.); guards against silent constant typos.
  SplitMix64 rng(1234567);
  const std::uint64_t first = rng();
  SplitMix64 rng2(1234567);
  EXPECT_EQ(first, rng2());
  // Output must differ from the raw seed and from zero.
  EXPECT_NE(first, 1234567u);
  EXPECT_NE(first, 0u);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, LongJumpProducesDisjointPrefix) {
  Xoshiro256ss a(7);
  Xoshiro256ss b(7);
  b.long_jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) {
    from_a.insert(a());
  }
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (from_a.contains(b())) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, BitsLookUniform) {
  Xoshiro256ss rng(42);
  // Mean of upper-bit should be ~0.5 over many draws.
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ones += static_cast<int>(rng() >> 63);
  }
  const double frac = static_cast<double>(ones) / n;
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Philox, PureFunctionOfCounterAndKey) {
  const Philox4x32 a(555);
  const Philox4x32 b(555);
  const Philox4x32::Counter ctr{1, 2, 3, 4};
  EXPECT_EQ(a(ctr), b(ctr));
  EXPECT_EQ(a(ctr), a(ctr));  // stateless: repeat calls agree
}

TEST(Philox, DifferentCountersDiffer) {
  const Philox4x32 engine(555);
  const auto out1 = engine(Philox4x32::Counter{0, 0, 0, 0});
  const auto out2 = engine(Philox4x32::Counter{1, 0, 0, 0});
  EXPECT_NE(out1, out2);
}

TEST(Philox, DifferentKeysDiffer) {
  const Philox4x32 a(1);
  const Philox4x32 b(2);
  const Philox4x32::Counter ctr{9, 9, 9, 9};
  EXPECT_NE(a(ctr), b(ctr));
}

TEST(Philox, BlockCoversCounterSpace) {
  const Philox4x32 engine(777);
  std::set<std::uint64_t> outputs;
  for (std::uint64_t hi = 0; hi < 10; ++hi) {
    for (std::uint64_t lo = 0; lo < 1000; ++lo) {
      const auto blk = engine.block(hi, lo);
      outputs.insert(blk[0]);
    }
  }
  EXPECT_EQ(outputs.size(), 10'000u);  // no collisions in 10k blocks
}

TEST(PhiloxStream, ReplaysExactly) {
  const Philox4x32 engine(31337);
  PhiloxStream s1(engine, 5, 17);
  PhiloxStream s2(engine, 5, 17);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(s1(), s2());
  }
}

TEST(PhiloxStream, WordSequenceMatchesBlockReconstruction) {
  // The stream contract the samplers replay against: word w comes from
  // block w/2 under counter (hi ^ (w >> 2), lo + (w >> 1)), words
  // alternating blk[0]/blk[1]. Pins the engine-by-pointer refactor to the
  // original bit-stream.
  const Philox4x32 engine(0xFEEDu);
  const std::uint64_t hi = 0x12345;
  const std::uint64_t lo = 0xABCDEF;
  PhiloxStream stream(engine, hi, lo);
  for (std::uint64_t w = 0; w < 64; ++w) {
    const auto blk = engine.block(hi ^ (w >> 2), lo + (w >> 1));
    ASSERT_EQ(stream(), blk[w & 1]) << "word " << w;
  }
}

TEST(PhiloxLanes, MatchesScalarBlocksIncludingTails) {
  // The batched facade must agree with Philox4x32::block word for word on
  // every length, including sub-width tails and n = 0 — on scalar builds
  // this exercises the scalar body through the same dispatch.
  const Philox4x32 engine(987654321);
  const PhiloxLanes lanes(engine);
  SplitMix64 seeder(11);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 37u, 64u}) {
    std::vector<std::uint64_t> hi(n);
    std::vector<std::uint64_t> lo(n);
    for (std::size_t i = 0; i < n; ++i) {
      hi[i] = seeder();
      lo[i] = seeder();
    }
    std::vector<std::uint64_t> out(2 * n + 2, 0xCCCCCCCCCCCCCCCCull);
    lanes.blocks(hi.data(), lo.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      const auto blk = engine.block(hi[i], lo[i]);
      ASSERT_EQ(out[2 * i], blk[0]) << "n=" << n << " i=" << i;
      ASSERT_EQ(out[2 * i + 1], blk[1]) << "n=" << n << " i=" << i;
    }
    // The guard words past 2n must be untouched.
    EXPECT_EQ(out[2 * n], 0xCCCCCCCCCCCCCCCCull);
    EXPECT_EQ(out[2 * n + 1], 0xCCCCCCCCCCCCCCCCull);
  }
}

TEST(PhiloxLanes, EveryIsaOverrideMatchesScalarBlocks) {
  // Pinning RISKAN_SIMD to each recognised value must never change a word:
  // compiled-in stamps run their kernel, everything else falls back to the
  // scalar body, so this matrix passes on any host while exercising every
  // stamp the build carries (avx512 and avx2 on x86, neon on aarch64).
  const Philox4x32 engine(424242);
  SplitMix64 seeder(5);
  constexpr std::size_t kN = 53;  // odd length: every stamp runs its tail
  std::vector<std::uint64_t> hi(kN);
  std::vector<std::uint64_t> lo(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    hi[i] = seeder();
    lo[i] = seeder();
  }
  std::vector<std::uint64_t> expect(2 * kN);
  philox_blocks_scalar(engine, hi.data(), lo.data(), kN, expect.data());
  const char* old = std::getenv("RISKAN_SIMD");
  const std::string saved = old != nullptr ? old : "";
  for (const char* isa : {"off", "avx512", "avx2", "neon"}) {
    ::setenv("RISKAN_SIMD", isa, 1);
    const PhiloxLanes lanes(engine);
    std::vector<std::uint64_t> out(2 * kN, 0);
    lanes.blocks(hi.data(), lo.data(), kN, out.data());
    for (std::size_t i = 0; i < 2 * kN; ++i) {
      ASSERT_EQ(out[i], expect[i]) << "isa=" << isa << " word " << i;
    }
  }
  if (old != nullptr) {
    ::setenv("RISKAN_SIMD", saved.c_str(), 1);
  } else {
    ::unsetenv("RISKAN_SIMD");
  }
}

TEST(PhiloxLanes, ScalarBodyMatchesBlocks) {
  const Philox4x32 engine(2024);
  std::vector<std::uint64_t> hi{0, 1, 0xFFFFFFFFFFFFFFFFull, 42};
  std::vector<std::uint64_t> lo{7, 0, 0xFFFFFFFFFFFFFFFFull, 42};
  std::vector<std::uint64_t> out(8);
  philox_blocks_scalar(engine, hi.data(), lo.data(), hi.size(), out.data());
  for (std::size_t i = 0; i < hi.size(); ++i) {
    const auto blk = engine.block(hi[i], lo[i]);
    EXPECT_EQ(out[2 * i], blk[0]);
    EXPECT_EQ(out[2 * i + 1], blk[1]);
  }
}

TEST(PhiloxStream, DistinctStreamsAreIndependentish) {
  const Philox4x32 engine(31337);
  PhiloxStream s1(engine, 0, 1);
  PhiloxStream s2(engine, 0, 2);
  int equal = 0;
  for (int i = 0; i < 256; ++i) {
    if (s1() == s2()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(PhiloxStream, MeanOfUniformsNearHalf) {
  const Philox4x32 engine(2);
  PhiloxStream stream(engine, 3, 4);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += to_unit_double(stream());
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(UnitDouble, RangeContracts) {
  EXPECT_GE(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(~std::uint64_t{0}), 1.0);
  EXPECT_GT(to_unit_double_open(0), 0.0);
  EXPECT_LE(to_unit_double_open(~std::uint64_t{0}), 1.0);
}

TEST(UnitDouble, PreservesOrdering) {
  EXPECT_LT(to_unit_double(std::uint64_t{1} << 40), to_unit_double(std::uint64_t{1} << 63));
}

}  // namespace
}  // namespace riskan
