// Scenario engine — what-if sweeps sharing one streamed YELT pass.
//
// The sweep's value rests on two hard equivalence contracts (ISSUE 3):
//   * the identity scenario is bit-identical to run_portfolio_batch on the
//     base book, even while perturbed scenarios ride the same pass;
//   * an exclusion-mask scenario is bit-identical to run_portfolio_batch on
//     the physically filtered YELT (filter_yelt) — including secondary
//     uncertainty, whose streams are keyed by the occurrence sequence the
//     occurrence would have in the filtered table.
// Both are checked across backends × secondary-uncertainty × grain sizes.
// Beyond those, term overrides / contract add+drop are bit-identical to
// physically materialised books, loss scaling to physically scaled ELTs on
// the means path, conditioning is consistent with PostEventAnalyzer, and
// the planner's dedupe telemetry (shared resolutions, mask dedupe) is
// asserted against a private ResolverCache.
#include <gtest/gtest.h>

#include <limits>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/post_event.hpp"
#include "core/simd.hpp"
#include "data/resolved_yelt.hpp"
#include "finance/contract.hpp"
#include "scenario/plan.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "util/require.hpp"

namespace riskan::scenario {
namespace {

finance::Portfolio book(std::size_t contracts, int layers, std::uint64_t seed = 99,
                        EventId catalog = 800, std::size_t elt_rows = 150) {
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = catalog;
  pg.elt_rows = elt_rows;
  pg.layers_per_contract = layers;
  pg.seed = seed;
  return finance::generate_portfolio(pg);
}

data::YearEventLossTable lens(TrialId trials, EventId catalog = 800,
                              std::uint64_t seed = 7) {
  data::YeltGenConfig yg;
  yg.trials = trials;
  yg.seed = seed;
  return data::generate_yelt(catalog, yg);
}

void expect_identical(const core::EngineResult& a, const core::EngineResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.portfolio_ylt.trials(), b.portfolio_ylt.trials()) << what;
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]) << what << " AEP trial " << t;
    ASSERT_EQ(a.reinstatement_premium[t], b.reinstatement_premium[t])
        << what << " reinstatement trial " << t;
  }
  ASSERT_EQ(a.portfolio_occurrence_ylt.trials(), b.portfolio_occurrence_ylt.trials())
      << what;
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_occurrence_ylt[t], b.portfolio_occurrence_ylt[t])
        << what << " OEP trial " << t;
  }
  ASSERT_EQ(a.contract_ylts.size(), b.contract_ylts.size()) << what;
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      ASSERT_EQ(a.contract_ylts[c][t], b.contract_ylts[c][t])
          << what << " contract " << c << " trial " << t;
    }
  }
}

/// A set of events that actually occur in the generated YELT and hit the
/// generated book, so exclusion scenarios change real losses.
std::vector<EventId> busy_events() { return {1, 2, 3, 5, 8, 13, 21, 34, 55, 89}; }

/// Every host backend plus the Simd pair when this build/host dispatches a
/// wide ISA (mask scenarios exercise the vector kernel's scalar fallback).
std::vector<core::Backend> backends_with_simd() {
  std::vector<core::Backend> backends(std::begin(core::kAllBackends),
                                      std::end(core::kAllBackends));
  if (core::exec::simd_available()) {
    backends.insert(backends.end(), std::begin(core::kSimdBackends),
                    std::end(core::kSimdBackends));
  }
  return backends;
}

TEST(ScenarioSweep, IdentityBitIdenticalAcrossBackendsGrainsAndSecondary) {
  const auto portfolio = book(/*contracts=*/4, /*layers=*/3);
  const auto yelt = lens(1'200);

  // The identity rides alongside perturbed scenarios — sharing the pass
  // with them must not contaminate it.
  std::vector<ScenarioSpec> specs(3);
  specs[0] = ScenarioSpec::identity("identity");
  specs[1].name = "surge";
  specs[1].loss_scale = 1.4;
  specs[2].name = "exclusion";
  specs[2].excluded_events = busy_events();

  for (const bool secondary : {false, true}) {
    for (const core::Backend backend : backends_with_simd()) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{97}}) {
        if (backend != core::Backend::Threaded &&
            backend != core::Backend::ThreadedSimd && grain != 0) {
          continue;  // grain only affects the chunk-partitioned backends
        }
        core::EngineConfig config;
        config.backend = backend;
        config.secondary_uncertainty = secondary;
        config.trial_grain = grain;

        const auto reference = core::run_portfolio_batch(portfolio, yelt, config);
        const auto sweep = run_scenario_sweep(portfolio, yelt, specs, config);

        const std::string what = std::string(core::to_string(backend)) +
                                 (secondary ? "/secondary" : "/means") +
                                 "/grain=" + std::to_string(grain);
        expect_identical(reference, sweep.base, what + " base");
        expect_identical(reference, sweep.scenarios[0], what + " identity");
        // Every backend now lowers through the same plan, so the lookup
        // telemetry agrees too (DeviceSim included — no fallback).
        EXPECT_EQ(reference.elt_lookups, sweep.base.elt_lookups) << what;
        EXPECT_EQ(reference.occurrences_processed, sweep.base.occurrences_processed)
            << what;
        // The perturbed scenarios really are perturbed.
        EXPECT_NE(sweep.scenarios[1].portfolio_ylt.total(),
                  reference.portfolio_ylt.total())
            << what;
      }
    }
  }
}

TEST(ScenarioSweep, MaskBitIdenticalToFilteredYeltAcrossBackendsGrainsAndSecondary) {
  const auto portfolio = book(/*contracts=*/4, /*layers=*/2);
  const auto yelt = lens(1'200);
  const auto excluded = busy_events();
  const auto filtered = filter_yelt(yelt, excluded);
  ASSERT_LT(filtered.entries(), yelt.entries()) << "mask must remove occurrences";

  std::vector<ScenarioSpec> specs(1);
  specs[0].name = "mask";
  specs[0].excluded_events = excluded;

  for (const bool secondary : {false, true}) {
    for (const core::Backend backend : backends_with_simd()) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{97}}) {
        if (backend != core::Backend::Threaded &&
            backend != core::Backend::ThreadedSimd && grain != 0) {
          continue;
        }
        core::EngineConfig config;
        config.backend = backend;
        config.secondary_uncertainty = secondary;
        config.trial_grain = grain;

        const auto reference = core::run_portfolio_batch(portfolio, filtered, config);
        const auto sweep = run_scenario_sweep(portfolio, yelt, specs, config);

        expect_identical(reference, sweep.scenarios[0],
                         std::string(core::to_string(backend)) +
                             (secondary ? "/secondary" : "/means") +
                             "/grain=" + std::to_string(grain) + " mask");
      }
    }
  }
}

TEST(ScenarioSweep, MaskOnRejectionHeavyBookBitIdenticalToFilteredYelt) {
  // High-CV ELT rows (both beta shapes < 1) make the batched sampler's
  // rejection-tail fallback fire constantly; the mask re-keys occurrence
  // sequences on top of that. The filtered-table equivalence must survive
  // the combination on every backend, vectorized ones included.
  const EventId catalog = 80;
  std::vector<data::EltRow> heavy_rows;
  for (EventId e = 0; e < catalog; ++e) {
    const Money mean = 1e5 + 2e4 * static_cast<Money>(e % 9);
    heavy_rows.push_back({e, mean, 2.3 * mean, 4e6});
  }
  finance::Layer layer;
  layer.id = 1;
  layer.terms = finance::LayerTerms::typical();
  layer.terms.occ_retention = 5e4;
  layer.terms.occ_limit = 3e6;
  finance::Portfolio portfolio;
  portfolio.add(
      finance::Contract(1, data::EventLossTable::from_rows(heavy_rows), {layer}));

  const auto yelt = lens(500, catalog, /*seed=*/23);
  const std::vector<EventId> excluded = {2, 7, 11, 30, 55};
  const auto filtered = filter_yelt(yelt, excluded);
  ASSERT_LT(filtered.entries(), yelt.entries());

  std::vector<ScenarioSpec> specs(1);
  specs[0].name = "mask";
  specs[0].excluded_events = excluded;

  for (const core::Backend backend : backends_with_simd()) {
    core::EngineConfig config;
    config.backend = backend;
    config.secondary_uncertainty = true;

    const auto reference = core::run_portfolio_batch(portfolio, filtered, config);
    const auto sweep = run_scenario_sweep(portfolio, yelt, specs, config);
    expect_identical(reference, sweep.scenarios[0],
                     std::string("rejection-heavy mask/") + core::to_string(backend));
  }
}

TEST(ScenarioSweep, DeviceSimBlockDimSweepIsBitIdentical) {
  // The sweep runs natively in simulated device blocks; the block
  // partition (32/128/512 trials per block) is pure scheduling and must
  // not move a bit of any scenario's outputs vs the host pass.
  const auto portfolio = book(/*contracts=*/3, /*layers=*/2);
  const auto yelt = lens(900);

  std::vector<ScenarioSpec> specs(2);
  specs[0].name = "surge";
  specs[0].loss_scale = 1.3;
  specs[1].name = "exclusion";
  specs[1].excluded_events = busy_events();

  core::EngineConfig config;
  config.backend = core::Backend::Sequential;
  const auto reference = run_scenario_sweep(portfolio, yelt, specs, config);

  config.backend = core::Backend::DeviceSim;
  for (const int block_dim : {32, 128, 512}) {
    config.device_block_dim = block_dim;
    const auto device = run_scenario_sweep(portfolio, yelt, specs, config);
    const std::string what = "sweep block dim " + std::to_string(block_dim);
    expect_identical(reference.base, device.base, what + " base");
    for (std::size_t s = 0; s < reference.scenarios.size(); ++s) {
      expect_identical(reference.scenarios[s], device.scenarios[s],
                       what + " scenario " + std::to_string(s));
    }
  }
}

TEST(ScenarioSweep, TermOverridesBitIdenticalToMaterializedBook) {
  const auto portfolio = book(/*contracts=*/3, /*layers=*/3);
  const auto yelt = lens(1'000);

  ScenarioSpec spec;
  spec.name = "re-strike";
  // Double one layer's attachment, halve another contract's shares, and add
  // a reinstatement schedule — addressed both per-layer and whole-contract.
  TargetedOverride raise_attach;
  raise_attach.contract = portfolio.contract(0).id();
  raise_attach.layer = portfolio.contract(0).layers()[1].id;
  raise_attach.override.occ_retention =
      portfolio.contract(0).layers()[1].terms.occ_retention * 2.0;
  spec.overrides.push_back(raise_attach);

  TargetedOverride halve_share;
  halve_share.contract = portfolio.contract(2).id();
  halve_share.override.share = 0.5;
  spec.overrides.push_back(halve_share);

  TargetedOverride reinstate;
  reinstate.contract = portfolio.contract(1).id();
  reinstate.layer = portfolio.contract(1).layers()[0].id;
  reinstate.override.reinstatement_count = 2;
  reinstate.override.reinstatement_rate = 1.0;
  reinstate.override.upfront_premium = 1e6;
  spec.overrides.push_back(reinstate);

  const auto materialized = materialize_portfolio(spec, portfolio);

  for (const bool secondary : {false, true}) {
    core::EngineConfig config;
    config.backend = core::Backend::Threaded;
    config.secondary_uncertainty = secondary;

    const auto reference = core::run_portfolio_batch(materialized, yelt, config);
    const auto sweep = run_scenario_sweep(portfolio, yelt, {&spec, 1}, config);
    expect_identical(reference, sweep.scenarios[0],
                     secondary ? "overrides/secondary" : "overrides/means");
    // The sweep's base stays the unmodified book.
    expect_identical(core::run_portfolio_batch(portfolio, yelt, config), sweep.base,
                     "base alongside overrides");
  }
}

TEST(ScenarioSweep, DropAndAddBitIdenticalToMaterializedBook) {
  const auto portfolio = book(/*contracts=*/4, /*layers=*/2, /*seed=*/11);
  const auto extra_book = book(/*contracts=*/2, /*layers=*/2, /*seed=*/333);
  const auto yelt = lens(900);

  ScenarioSpec spec;
  spec.name = "recompose";
  spec.dropped_contracts = {portfolio.contract(1).id()};
  spec.added_contracts = {&extra_book.contract(0)};

  const auto materialized = materialize_portfolio(spec, portfolio);
  ASSERT_EQ(materialized.size(), portfolio.size());  // -1 drop, +1 add

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  const auto reference = core::run_portfolio_batch(materialized, yelt, config);
  const auto sweep = run_scenario_sweep(portfolio, yelt, {&spec, 1}, config);
  expect_identical(reference, sweep.scenarios[0], "drop+add");
}

TEST(ScenarioSweep, LossScaleBitIdenticalToScaledEltOnMeansPath) {
  const auto portfolio = book(/*contracts=*/3, /*layers=*/2);
  const auto yelt = lens(800);
  const double scale = 1.35;

  // Physically scale every ELT mean — the demand-surge reference book.
  finance::Portfolio scaled;
  for (const auto& contract : portfolio.contracts()) {
    const auto& elt = contract.elt();
    std::vector<data::EltRow> rows;
    rows.reserve(elt.size());
    for (std::size_t i = 0; i < elt.size(); ++i) {
      rows.push_back({elt.event_ids()[i], elt.mean_loss()[i] * scale,
                      elt.sigma_loss()[i], elt.exposure()[i]});
    }
    scaled.add(finance::Contract(contract.id(), data::EventLossTable::from_rows(rows),
                                 contract.layers(), contract.region(), contract.lob(),
                                 contract.peril()));
  }

  ScenarioSpec spec;
  spec.name = "surge";
  spec.loss_scale = scale;

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.secondary_uncertainty = false;  // sampling responds nonlinearly to the
                                         // mean; the bit-contract is means-path
  const auto reference = core::run_portfolio_batch(scaled, yelt, config);
  const auto sweep = run_scenario_sweep(portfolio, yelt, {&spec, 1}, config);
  expect_identical(reference, sweep.scenarios[0], "loss scale means path");

  // Under secondary uncertainty the semantic is "scale the sampled loss":
  // strictly monotone in the scale.
  config.secondary_uncertainty = true;
  const auto sweep2 = run_scenario_sweep(portfolio, yelt, {&spec, 1}, config);
  EXPECT_GT(sweep2.scenarios[0].portfolio_ylt.total(), sweep2.base.portfolio_ylt.total());
}

TEST(ScenarioSweep, ConditioningSubsumesPostEventWhatIf) {
  // Single contract, single layer, share 1, no binding aggregate: the
  // conditioned trial loss is base + the event's occurrence loss, and that
  // occurrence loss is exactly what PostEventAnalyzer reports.
  const EventId event = 42;
  std::vector<data::EltRow> rows;
  for (EventId e = 0; e < 100; ++e) {
    rows.push_back({e, 2e6 + 1e4 * e, 5e5, 1e7});
  }
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 1e6;
  layer.terms.occ_limit = 8e6;
  layer.terms.agg_retention = 0.0;
  layer.terms.agg_limit = std::numeric_limits<Money>::max();
  layer.terms.share = 1.0;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(7, data::EventLossTable::from_rows(rows), {layer}));

  const auto yelt = lens(600, /*catalog=*/100);
  const double intensity = 1.2;

  ScenarioSpec spec;
  spec.name = "post-event";
  spec.conditioning = PostEventConditioning{event, intensity};

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.secondary_uncertainty = false;

  const auto sweep = run_scenario_sweep(portfolio, yelt, {&spec, 1}, config);

  const core::PostEventAnalyzer analyzer(portfolio);
  const auto impact = analyzer.analyse(event, intensity);
  ASSERT_EQ(impact.layers.size(), 1u);
  const Money occ = impact.layers[0].occurrence_loss;
  ASSERT_GT(occ, 0.0);
  EXPECT_EQ(impact.layers[0].net_loss, occ);  // share 1, no prior losses

  for (TrialId t = 0; t < yelt.trials(); ++t) {
    EXPECT_NEAR(sweep.scenarios[0].portfolio_ylt[t], sweep.base.portfolio_ylt[t] + occ,
                1e-6)
        << "trial " << t;
    // The injected occurrence participates in the OEP too.
    EXPECT_GE(sweep.scenarios[0].portfolio_occurrence_ylt[t] + 1e-9, occ) << t;
  }
  EXPECT_NEAR(sweep.report.rows[0].delta_aal, occ, 1e-6);
}

TEST(ScenarioSweep, PlannerDedupesResolutionsAndMasks) {
  const auto portfolio = book(/*contracts=*/3, /*layers=*/2);
  const auto yelt = lens(700);
  data::ResolverCache cache;

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.resolver_cache = &cache;

  // A base batched run first: the sweep must reuse its resolutions.
  core::run_portfolio_batch(portfolio, yelt, config);
  EXPECT_EQ(cache.miss_count(), portfolio.size());

  std::vector<ScenarioSpec> specs(4);
  specs[0].name = "mask-a";
  specs[0].excluded_events = busy_events();
  specs[1].name = "mask-a-again";
  specs[1].excluded_events = busy_events();
  specs[2].name = "mask-b";
  specs[2].excluded_events = {400, 401};
  specs[3].name = "surge";
  specs[3].loss_scale = 2.0;

  const auto sweep = run_scenario_sweep(portfolio, yelt, specs, config);

  // No scenario re-resolved anything: every transform preserves event-id
  // structure, so the base resolutions serve all five (incl. base) books.
  EXPECT_EQ(cache.miss_count(), portfolio.size());
  EXPECT_EQ(cache.hit_count(), portfolio.size());

  EXPECT_EQ(sweep.plan.scenarios, 5u);  // 4 specs + implicit base
  EXPECT_EQ(sweep.plan.contracts_resolved, 3u);
  EXPECT_EQ(sweep.plan.resolutions_avoided, 5u * 3u - 3u);
  EXPECT_EQ(sweep.plan.distinct_masks, 2u);  // mask-a shared, mask-b separate
  EXPECT_EQ(sweep.plan.mask_references, 3u);
  EXPECT_EQ(sweep.plan.slots, 5u * portfolio.layer_count());
  EXPECT_EQ(sweep.plan.gather_groups, portfolio.layer_count());
}

TEST(ScenarioSweep, ReportDeltasAreCoherent) {
  const auto portfolio = book(/*contracts=*/4, /*layers=*/2);
  const auto yelt = lens(1'000);

  std::vector<ScenarioSpec> specs(3);
  specs[0] = ScenarioSpec::identity("identity");
  specs[1].name = "surge";
  specs[1].loss_scale = 1.5;
  specs[2].name = "exclusion";
  specs[2].excluded_events = busy_events();

  const auto sweep = run_scenario_sweep(portfolio, yelt, specs, {});

  ASSERT_EQ(sweep.report.rows.size(), 3u);
  EXPECT_EQ(sweep.report.rows[0].name, "identity");
  EXPECT_EQ(sweep.report.rows[0].delta_aal, 0.0);
  EXPECT_EQ(sweep.report.rows[0].delta_var_99, 0.0);
  EXPECT_EQ(sweep.report.rows[0].delta_tvar_99, 0.0);
  EXPECT_EQ(sweep.report.rows[0].delta_pml_250, 0.0);
  EXPECT_GT(sweep.report.rows[1].delta_aal, 0.0);
  EXPECT_LE(sweep.report.rows[2].delta_aal, 0.0);
  ASSERT_EQ(sweep.report.return_periods.size(), sweep.report.rows[0].aep.size());
  ASSERT_EQ(sweep.report.rows[0].oep.size(), sweep.report.rows[0].aep.size());
  for (std::size_t i = 0; i < sweep.report.rows[0].aep.size(); ++i) {
    EXPECT_EQ(sweep.report.rows[0].delta_aep[i], 0.0);
    EXPECT_EQ(sweep.report.rows[0].delta_oep[i], 0.0);
  }
}

TEST(ScenarioSweep, RejectsIllFormedSpecs) {
  const auto portfolio = book(/*contracts=*/2, /*layers=*/1);
  const auto yelt = lens(300);

  ScenarioSpec bad_target;
  bad_target.name = "bad-target";
  TargetedOverride stray;
  stray.contract = 9999;
  bad_target.overrides.push_back(stray);
  const std::span<const ScenarioSpec> bad_target_span(&bad_target, 1);
  EXPECT_THROW(run_scenario_sweep(portfolio, yelt, bad_target_span, {}),
               ContractViolation);

  ScenarioSpec bad_scale;
  bad_scale.name = "bad-scale";
  bad_scale.loss_scale = 0.0;
  const std::span<const ScenarioSpec> bad_scale_span(&bad_scale, 1);
  EXPECT_THROW(run_scenario_sweep(portfolio, yelt, bad_scale_span, {}),
               ContractViolation);

  ScenarioSpec empty_book;
  empty_book.name = "empty-book";
  for (const auto& contract : portfolio.contracts()) {
    empty_book.dropped_contracts.push_back(contract.id());
  }
  const std::span<const ScenarioSpec> empty_book_span(&empty_book, 1);
  EXPECT_THROW(run_scenario_sweep(portfolio, yelt, empty_book_span, {}),
               ContractViolation);

  // A conditioning event no contract models would silently degenerate to
  // the identity — the plan rejects it instead.
  ScenarioSpec ghost_event;
  ghost_event.name = "ghost-event";
  ghost_event.conditioning = PostEventConditioning{999'999, 1.0};
  const std::span<const ScenarioSpec> ghost_event_span(&ghost_event, 1);
  EXPECT_THROW(run_scenario_sweep(portfolio, yelt, ghost_event_span, {}),
               ContractViolation);
}

TEST(MaskColumn, AdjustedSequencesMatchFilteredTable) {
  const auto yelt = lens(400, /*catalog=*/200);
  const std::vector<EventId> excluded = {3, 14, 15, 92};
  const auto mask = MaskColumn::build(yelt, excluded);
  const auto filtered = filter_yelt(yelt, excluded);

  ASSERT_EQ(mask.adjusted_seq.size(), yelt.entries());
  EXPECT_EQ(yelt.entries() - mask.excluded_occurrences, filtered.entries());

  // Walking the original table with the mask must enumerate exactly the
  // filtered table's occurrences, with matching sequence numbers.
  const auto offsets = yelt.offsets();
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    const auto original = yelt.trial_events(t);
    const auto kept = filtered.trial_events(t);
    std::size_t expected_seq = 0;
    for (std::size_t i = 0; i < original.size(); ++i) {
      const std::uint32_t adjusted = mask.adjusted_seq[offsets[t] + i];
      if (adjusted == core::batch::kMaskedOut) {
        continue;
      }
      ASSERT_EQ(adjusted, expected_seq) << "trial " << t;
      ASSERT_EQ(original[i], kept[expected_seq]) << "trial " << t;
      ++expected_seq;
    }
    ASSERT_EQ(expected_seq, kept.size()) << "trial " << t;
  }
}

}  // namespace
}  // namespace riskan::scenario
