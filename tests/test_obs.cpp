// The observability layer's contracts: histogram bucketing and percentile
// extraction, lock-free shard folding under concurrent writers, chrome
// trace JSON schema, the Spans wire codec, and — the load-bearing one —
// dist span forwarding across the fault matrix without disturbing the
// bit-identity guarantee. Tracing and metrics are telemetry: with them
// armed, every result must equal the unobserved run exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "data/serialize.hpp"
#include "dist/coordinator.hpp"
#include "dist/frame.hpp"
#include "finance/contract.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket and percentile contracts
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketAssignmentUsesUpperEdges) {
  MetricsRegistry registry;
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  auto h = registry.histogram("h", bounds);
  // Buckets are (-inf,1], (1,2], (2,4], (4,+inf): an observation equal to
  // an edge lands in the bucket the edge closes.
  h.observe(0.5);
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(3.0);
  h.observe(4.0);
  h.observe(5.0);

  const auto snap = registry.snapshot();
  const auto* hv = snap.histogram("h");
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->counts.size(), bounds.size() + 1);
  EXPECT_EQ(hv->counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(hv->counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(hv->counts[2], 2u);  // 3.0, 4.0
  EXPECT_EQ(hv->counts[3], 1u);  // 5.0
  EXPECT_EQ(hv->count, 7u);
  EXPECT_DOUBLE_EQ(hv->sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);
  EXPECT_DOUBLE_EQ(hv->min, 0.5);
  EXPECT_DOUBLE_EQ(hv->max, 5.0);
}

TEST(ObsHistogram, PercentilesInterpolateWithinBuckets) {
  MetricsRegistry registry;
  // Ten buckets of width 10, each holding exactly the ten integers in its
  // range — in-bucket linear interpolation then yields exact percentiles.
  std::vector<double> bounds;
  for (double b = 10.0; b <= 90.0; b += 10.0) {
    bounds.push_back(b);
  }
  auto h = registry.histogram("u", bounds);
  for (int v = 1; v <= 100; ++v) {
    h.observe(static_cast<double>(v));
  }

  const auto snap = registry.snapshot();
  const auto* hv = snap.histogram("u");
  ASSERT_NE(hv, nullptr);
  EXPECT_DOUBLE_EQ(hv->p50(), 50.0);
  EXPECT_DOUBLE_EQ(hv->p95(), 95.0);
  EXPECT_DOUBLE_EQ(hv->p99(), 99.0);
  EXPECT_DOUBLE_EQ(hv->quantile(0.0), 1.0);   // clamps to observed min
  EXPECT_DOUBLE_EQ(hv->quantile(1.0), 100.0); // clamps to observed max
  EXPECT_DOUBLE_EQ(hv->mean(), 50.5);
  // Monotonicity across the whole range.
  double prev = hv->quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = hv->quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(ObsHistogram, SingleDistinctValueIsExactAtEveryQuantile) {
  MetricsRegistry registry;
  auto h = registry.histogram("point", std::vector<double>{1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) {
    h.observe(3.0);
  }
  const auto snap = registry.snapshot();
  const auto* hv = snap.histogram("point");
  ASSERT_NE(hv, nullptr);
  // min == max pins the landing bucket's interpolation range to the point.
  EXPECT_DOUBLE_EQ(hv->p50(), 3.0);
  EXPECT_DOUBLE_EQ(hv->p95(), 3.0);
  EXPECT_DOUBLE_EQ(hv->p99(), 3.0);
}

TEST(ObsHistogram, EmptyHistogramReadsAsZero) {
  MetricsRegistry registry;
  (void)registry.histogram("never");
  const auto snap = registry.snapshot();
  const auto* hv = snap.histogram("never");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 0u);
  EXPECT_DOUBLE_EQ(hv->p99(), 0.0);
  EXPECT_DOUBLE_EQ(hv->mean(), 0.0);
}

TEST(ObsHistogram, BoundsClashRejected) {
  MetricsRegistry registry;
  (void)registry.histogram("h", std::vector<double>{1.0, 2.0});
  // Same name, same bounds: idempotent.
  EXPECT_NO_THROW((void)registry.histogram("h", std::vector<double>{1.0, 2.0}));
  // Same name, different meaning: rejected.
  EXPECT_THROW((void)registry.histogram("h", std::vector<double>{1.0, 3.0}),
               ContractViolation);
  EXPECT_THROW((void)registry.counter("h"), ContractViolation);
}

// ---------------------------------------------------------------------------
// Shard folding under concurrent writers
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ConcurrentCounterAddsFoldExactly) {
  MetricsRegistry registry;
  auto counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.add(1.0);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Integer-valued adds below 2^53 fold without rounding: the shard sums
  // must account for every increment from every thread.
  EXPECT_DOUBLE_EQ(registry.snapshot().counter_value("hits"),
                   static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(ObsRegistry, ConcurrentHistogramObservesFoldExactly) {
  MetricsRegistry registry;
  auto h = registry.histogram("lat", std::vector<double>{1.0, 2.0, 3.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Thread t writes a single per-thread value so the expected bucket
      // counts are exact: values 0.5, 1.5, 2.5, 3.5 cycle over buckets.
      const double v = 0.5 + static_cast<double>(t % 4);
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(v);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  const auto snap = registry.snapshot();
  const auto* hv = snap.histogram("lat");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(hv->counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(hv->counts[b], 2u * kPerThread) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(hv->min, 0.5);
  EXPECT_DOUBLE_EQ(hv->max, 3.5);
}

TEST(ObsRegistry, SnapshotDeltaSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  auto c = registry.counter("c");
  auto g = registry.gauge("g");
  auto h = registry.histogram("h", std::vector<double>{1.0});
  c.add(5.0);
  g.set(1.0);
  h.observe(0.5);
  const auto before = registry.snapshot();
  c.add(3.0);
  g.set(42.0);
  h.observe(0.25);
  h.observe(2.0);
  const auto after = registry.snapshot();

  const auto delta = RegistrySnapshot::delta(before, after);
  EXPECT_DOUBLE_EQ(delta.counter_value("c"), 3.0);
  ASSERT_NE(delta.gauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(delta.gauge("g")->value, 42.0);  // last-write-wins
  const auto* hv = delta.histogram("h");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 2u);
  EXPECT_EQ(hv->counts[0], 1u);
  EXPECT_EQ(hv->counts[1], 1u);
}

TEST(ObsRegistry, DisabledGlobalRegistryDropsWrites) {
  auto& global = MetricsRegistry::global();
  auto c = global.counter("test.disabled_probe");
  const bool was_enabled = enabled();
  set_enabled(false);
  c.add(7.0);
  set_enabled(was_enabled);
  const double value =
      MetricsRegistry::global().snapshot().counter_value("test.disabled_probe");
  EXPECT_DOUBLE_EQ(value, 0.0);
}

// ---------------------------------------------------------------------------
// Trace buffer and chrome trace JSON
// ---------------------------------------------------------------------------

TEST(ObsTrace, RingDropsWhenFullAndCounts) {
  TraceBuffer buffer(4);
  buffer.set_active(true);
  const auto id = buffer.intern("e");
  for (int i = 0; i < 6; ++i) {
    buffer.record(id, 0, 0, static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 2u);
  EXPECT_EQ(buffer.collect().size(), 4u);
  buffer.reset();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(ObsTrace, IncrementalCollectDrainsWithCursor) {
  TraceBuffer buffer(16);
  buffer.set_active(true);
  const auto id = buffer.intern("e");
  buffer.record(id, 0, 0, 1, 1);
  buffer.record(id, 0, 0, 2, 1);
  std::size_t cursor = 0;
  EXPECT_EQ(buffer.collect(cursor, &cursor).size(), 2u);
  EXPECT_EQ(buffer.collect(cursor, &cursor).size(), 0u);
  buffer.record(id, 0, 0, 3, 1);
  const auto tail = buffer.collect(cursor, &cursor);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].start_ns, 3u);
}

TEST(ObsTrace, ChromeTraceJsonSchemaRoundTrips) {
  std::vector<CollectedSpan> spans;
  spans.push_back({"engine.\"run\"", 0, 0, 1'000, 2'500, false});
  spans.push_back({"dist.lease_grant", 1, 0, 4'000, 0, true});
  spans.push_back({"dist.worker_task", 2, 7, 5'000, 1'000, false});
  const std::string json =
      chrome_trace_json(spans, {{0, "main"}, {3, "prefetch"}});

  // A JSON array with balanced braces (escaping keeps the quote in the
  // span name from breaking the document).
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of('\n')], ']');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // Process metadata: one lane per pid, named engine/worker-k.
  EXPECT_NE(json.find(R"("name":"process_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"engine"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"worker 0"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"worker 1"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"prefetch"})"), std::string::npos);

  // The complete event: microseconds with sub-µs precision preserved.
  EXPECT_NE(json.find(R"("name":"engine.\"run\"")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","ts":1.000,"dur":2.500)"), std::string::npos);
  // The instant event.
  EXPECT_NE(json.find(R"("ph":"i","s":"t","ts":4.000)"), std::string::npos);
  // Lane → pid mapping carries through.
  EXPECT_NE(json.find(R"("pid":2,"tid":7)"), std::string::npos);
}

TEST(ObsTimer, StopIsIdempotentAndResetSplitsIntervals) {
  Timer timer("test.timer");
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(timer.stop(), first);   // idempotent
  EXPECT_DOUBLE_EQ(timer.seconds(), first);
  timer.reset();
  EXPECT_GE(timer.stop(), 0.0);
}

TEST(ObsConfigValidation, RejectsBadBoundsAndPaths) {
  ObsConfig bad_order;
  bad_order.histogram_bounds = {1.0, 1.0};
  EXPECT_THROW(validate_obs_config(bad_order), ContractViolation);

  ObsConfig non_finite;
  non_finite.histogram_bounds = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(validate_obs_config(non_finite), ContractViolation);

  ObsConfig bad_trace;
  bad_trace.trace_path = "/nonexistent-dir-riskan/trace.json";
  EXPECT_THROW(validate_obs_config(bad_trace), ContractViolation);

  ObsConfig bad_report;
  bad_report.report_path = "/nonexistent-dir-riskan/report.json";
  EXPECT_THROW(validate_obs_config(bad_report), ContractViolation);

  ObsConfig ok;
  ok.collect_report = true;
  ok.trace_path = "/tmp/riskan-obs-validate-trace.json";
  ok.histogram_bounds = {0.001, 0.01, 0.1};
  EXPECT_NO_THROW(validate_obs_config(ok));
}

// ---------------------------------------------------------------------------
// Spans wire codec (FrameType::Spans payload)
// ---------------------------------------------------------------------------

TEST(ObsSpansCodec, RoundTripsSpansAndInstants) {
  std::vector<CollectedSpan> spans;
  spans.push_back({"dist.worker_task", 0, 3, 123, 456, false});
  spans.push_back({"dist.lease_grant", 0, 0, 789, 0, true});
  spans.push_back({"name with spaces \"and quotes\"", 0, 1, 1, 2, false});

  const auto payload = dist::encode_spans_payload(spans);
  const auto decoded = dist::decode_spans_payload(payload);
  ASSERT_EQ(decoded.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(decoded[i].name, spans[i].name);
    EXPECT_EQ(decoded[i].tid, spans[i].tid);
    EXPECT_EQ(decoded[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(decoded[i].dur_ns, spans[i].dur_ns);
    EXPECT_EQ(decoded[i].instant, spans[i].instant);
  }
}

TEST(ObsSpansCodec, TruncatedAndImplausiblePayloadsRejected) {
  std::vector<CollectedSpan> spans;
  spans.push_back({"x", 0, 1, 2, 3, false});
  auto payload = dist::encode_spans_payload(spans);
  payload.resize(payload.size() - 4);  // cut mid-record
  EXPECT_THROW((void)dist::decode_spans_payload(payload), CorruptFrameError);

  // A count far beyond what the payload could hold.
  ByteWriter writer;
  writer.u64(1'000'000);
  EXPECT_THROW((void)dist::decode_spans_payload(writer.buffer()), CorruptFrameError);

  // Trailing garbage after the last record.
  auto padded = dist::encode_spans_payload(spans);
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)dist::decode_spans_payload(padded), CorruptFrameError);
}

// ---------------------------------------------------------------------------
// Dist span forwarding across the fault matrix
// ---------------------------------------------------------------------------

struct ObsDistWorld {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
  std::vector<std::vector<std::byte>> encoded;
  std::vector<dist::BlockSpec> specs;
  std::vector<Money> reference;
};

constexpr TrialId kTrials = 320;
constexpr TrialId kPerBlock = 80;

const ObsDistWorld& dist_world() {
  static const ObsDistWorld w = [] {
    ObsDistWorld built;
    finance::PortfolioGenConfig pg;
    pg.contracts = 2;
    pg.catalog_events = 120;
    pg.elt_rows = 25;
    built.portfolio = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = kTrials;
    built.yelt = data::generate_yelt(120, yg);

    for (TrialId lo = 0; lo < kTrials; lo += kPerBlock) {
      const TrialId hi = std::min<TrialId>(kTrials, lo + kPerBlock);
      ByteWriter writer;
      data::encode_yelt_slice(built.yelt, lo, hi, writer);
      built.specs.push_back({built.encoded.size(), lo, hi - lo});
      built.encoded.push_back(writer.buffer());
    }

    core::EngineConfig engine;
    engine.backend = core::Backend::Sequential;
    engine.compute_oep = false;
    engine.keep_contract_ylts = false;
    const auto result =
        core::run_aggregate_analysis(built.portfolio, built.yelt, engine);
    const auto losses = result.portfolio_ylt.losses();
    built.reference.assign(losses.begin(), losses.end());
    return built;
  }();
  return w;
}

std::size_t count_spans(const std::vector<CollectedSpan>& spans,
                        std::string_view name, bool worker_lane) {
  std::size_t n = 0;
  for (const auto& s : spans) {
    if (s.name == name && (s.lane >= 1) == worker_lane) {
      ++n;
    }
  }
  return n;
}

/// Runs the dist matrix entry with global tracing armed, asserts the
/// result is still bit-identical, and returns the collected trace.
std::vector<CollectedSpan> run_traced(dist::DistConfig config) {
  const auto& w = dist_world();
  start_global_trace();
  core::EngineConfig engine;
  const auto result = dist::run_distributed_aggregate(w.portfolio, engine,
                                                      w.specs, [](const auto& spec) {
                                                        return dist_world().encoded[spec.id];
                                                      },
                                                      config);
  auto spans = TraceBuffer::global().collect();
  TraceBuffer::global().set_active(false);
  TraceBuffer::global().reset();

  EXPECT_EQ(result.portfolio_ylt.trials(), w.reference.size());
  for (TrialId t = 0; t < result.portfolio_ylt.trials(); ++t) {
    EXPECT_EQ(result.portfolio_ylt[t], w.reference[t]) << "trial " << t;
  }
  return spans;
}

TEST(ObsDistForwarding, WorkerSpansArriveOnWorkerLanes) {
  dist::DistConfig config;
  config.workers = 4;
  const auto spans = run_traced(config);

  // Every block executed in a worker shows up as a forwarded span on a
  // worker lane (never lane 0 — lanes are re-stamped by the coordinator).
  EXPECT_GE(count_spans(spans, "dist.worker_task", /*worker_lane=*/true),
            dist_world().specs.size());
  EXPECT_EQ(count_spans(spans, "dist.worker_task", /*worker_lane=*/false), 0u);
  // Scheduling instants ride the coordinator side, attributed to the
  // granted worker's lane.
  EXPECT_GE(count_spans(spans, "dist.lease_grant", /*worker_lane=*/true),
            dist_world().specs.size());
  // Multiple distinct worker lanes appear.
  std::vector<std::uint32_t> lanes;
  for (const auto& s : spans) {
    if (s.lane >= 1 && std::find(lanes.begin(), lanes.end(), s.lane) == lanes.end()) {
      lanes.push_back(s.lane);
    }
  }
  EXPECT_GE(lanes.size(), 2u);
}

TEST(ObsDistForwarding, CrashRecoveryKeepsBitIdentityWithTracingOn) {
  dist::DistConfig config;
  config.workers = 2;
  config.faults.crash = {0, 1};
  const auto spans = run_traced(config);
  EXPECT_GE(count_spans(spans, "dist.block_requeued", /*worker_lane=*/false), 1u);
}

TEST(ObsDistForwarding, CorruptReplyKeepsBitIdentityWithTracingOn) {
  dist::DistConfig config;
  config.workers = 2;
  config.faults.corrupt = {0, 1};
  const auto spans = run_traced(config);
  EXPECT_GE(count_spans(spans, "dist.worker_task", /*worker_lane=*/true), 1u);
}

TEST(ObsDistForwarding, TornReplyKeepsBitIdentityWithTracingOn) {
  dist::DistConfig config;
  config.workers = 2;
  config.faults.torn = {0, 1};
  (void)run_traced(config);
}

TEST(ObsDistForwarding, StallEmitsLeaseEventsAndKeepsBitIdentity) {
  dist::DistConfig config;
  config.workers = 2;
  config.lease_seconds = 0.25;
  config.faults.stall = {0, 1};
  config.faults.stall_seconds = 0.6;
  const auto spans = run_traced(config);
  EXPECT_GE(count_spans(spans, "dist.lease_expired", /*worker_lane=*/true), 1u);
  EXPECT_GE(count_spans(spans, "dist.block_requeued", /*worker_lane=*/false), 1u);
}

// ---------------------------------------------------------------------------
// End-of-run reports through the engine entry point
// ---------------------------------------------------------------------------

TEST(ObsReportFlow, EngineRunProducesMetricsDeltaReport) {
  const auto& w = dist_world();
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.obs.collect_report = true;
  const auto result = core::run_aggregate_analysis(w.portfolio, w.yelt, engine);
  ASSERT_NE(result.obs_report, nullptr);
  EXPECT_GE(result.obs_report->seconds, 0.0);
  // The run itself shows up in the delta: exactly this run's engine.runs.
  EXPECT_DOUBLE_EQ(result.obs_report->metrics.counter_value("engine.runs"), 1.0);
  const std::string json = result.obs_report->to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);

  // No report requested → no report allocated.
  core::EngineConfig plain;
  plain.backend = core::Backend::Sequential;
  const auto unobserved = core::run_aggregate_analysis(w.portfolio, w.yelt, plain);
  EXPECT_EQ(unobserved.obs_report, nullptr);

  // And observability must not perturb the numbers.
  ASSERT_EQ(result.portfolio_ylt.trials(), unobserved.portfolio_ylt.trials());
  for (TrialId t = 0; t < result.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(result.portfolio_ylt[t], unobserved.portfolio_ylt[t]);
  }
}

TEST(ObsReportFlow, TracePathExportsLoadableChromeTrace) {
  const auto& w = dist_world();
  const std::string path = "/tmp/riskan-obs-engine-trace.json";
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.obs.trace_path = path;
  (void)core::run_aggregate_analysis(w.portfolio, w.yelt, engine);
  // The scope turned tracing off again after exporting.
  EXPECT_FALSE(TraceBuffer::global().active());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find("engine.block"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace riskan::obs
