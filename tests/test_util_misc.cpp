// Formatting, report tables, binary I/O, alias table, and contract macros.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/alias_table.hpp"
#include "util/bytes.hpp"
#include "util/format.hpp"
#include "util/prng.hpp"
#include "util/report.hpp"
#include "util/require.hpp"

namespace riskan {
namespace {

TEST(Format, Counts) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
  EXPECT_EQ(format_count(5e16), "5.00e+16");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024.0), "1.00 MiB");
  EXPECT_EQ(format_bytes(2.5 * 1024.0 * 1024.0 * 1024.0 * 1024.0), "2.50 TiB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(5e-9), "5.0 ns");
  EXPECT_EQ(format_seconds(2.5e-4), "250.0 us");
  EXPECT_EQ(format_seconds(0.025), "25.0 ms");
  EXPECT_EQ(format_seconds(25.0), "25.00 s");
  EXPECT_EQ(format_seconds(600.0), "10.0 min");
  EXPECT_EQ(format_seconds(3.0 * 86400.0), "3.0 days");
}

TEST(Format, Rates) {
  EXPECT_EQ(format_rate(123.0), "123.00 /s");
  EXPECT_EQ(format_rate(1.23e9), "1.23 G/s");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
}

TEST(ReportTable, PrintsAligned) {
  ReportTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long-name", "23456"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("beta-long-name"), std::string::npos);
  EXPECT_NE(text.find("23456"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(ReportTable, RejectsRaggedRows) {
  ReportTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(ReportTable({}), ContractViolation);
}

TEST(ReportTable, CsvEscapes) {
  ReportTable table({"k", "v"});
  table.add_row({"with,comma", "with\"quote"});
  const std::string path = "/tmp/riskan_test_report.csv";
  table.write_csv(path);
  const auto data = read_file(path);
  const std::string text(reinterpret_cast<const char*>(data.data()), data.size());
  EXPECT_NE(text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"with\"\"quote\""), std::string::npos);
  remove_file(path);
}

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter writer;
  writer.u8(7);
  writer.u32(123456);
  writer.u64(0xDEADBEEFCAFEF00DULL);
  writer.f64(3.25);
  writer.str("hello world");

  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.u8(), 7);
  EXPECT_EQ(reader.u32(), 123456u);
  EXPECT_EQ(reader.u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.25);
  EXPECT_EQ(reader.str(), "hello world");
  EXPECT_TRUE(reader.done());
}

TEST(Bytes, ReaderOverrunThrows) {
  ByteWriter writer;
  writer.u32(1);
  ByteReader reader(writer.buffer());
  (void)reader.u32();
  EXPECT_THROW((void)reader.u8(), ContractViolation);
}

TEST(Bytes, FileRoundTrip) {
  const std::string path = "/tmp/riskan_test_bytes.bin";
  ByteWriter writer;
  writer.u64(42);
  writer.str("file-content");
  write_file(path, writer.buffer());
  EXPECT_TRUE(file_exists(path));

  const auto data = read_file(path);
  ByteReader reader(data);
  EXPECT_EQ(reader.u64(), 42u);
  EXPECT_EQ(reader.str(), "file-content");

  remove_file(path);
  EXPECT_FALSE(file_exists(path));
}

TEST(AliasTable, NormalisesProbabilities) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  AliasTable table(weights);
  EXPECT_DOUBLE_EQ(table.probability(0), 0.1);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.3);
  EXPECT_DOUBLE_EQ(table.probability(2), 0.6);
}

TEST(AliasTable, SamplingFrequenciesMatchWeights) {
  const std::vector<double> weights{5.0, 1.0, 0.0, 4.0};
  AliasTable table(weights);
  Xoshiro256ss rng(6);
  std::vector<int> counts(4, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    ++counts[table.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.01);
}

TEST(AliasTable, SingleWeight) {
  const std::vector<double> weights{2.5};
  AliasTable table(weights);
  Xoshiro256ss rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.sample(rng), 0u);
  }
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), ContractViolation);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), ContractViolation);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), ContractViolation);
}

TEST(Require, MacrosThrowWithContext) {
  try {
    RISKAN_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
  EXPECT_THROW(RISKAN_ENSURE(false, ""), ContractViolation);
  EXPECT_NO_THROW(RISKAN_REQUIRE(true, "fine"));
}

}  // namespace
}  // namespace riskan
