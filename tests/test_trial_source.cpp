// The TrialSource data plane: streamed-vs-in-memory bit-identical
// equivalence across backends × batching × secondary × scenario sweeps,
// the prefetch pipeline, chunk checksums, and the slice encoder.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/simd.hpp"
#include "core/streaming.hpp"
#include "data/chunked_file.hpp"
#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "scenario/sweep.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan {
namespace {

using core::Backend;
using core::EngineConfig;
using core::EngineResult;

struct SmallWorkload {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

SmallWorkload make_workload(std::size_t contracts = 5, TrialId trials = 777) {
  SmallWorkload w;
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = 200;
  pg.elt_rows = 50;
  pg.layers_per_contract = 2;
  w.portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = trials;  // deliberately not a multiple of common chunk sizes
  w.yelt = data::generate_yelt(200, yg);
  return w;
}

void expect_equal_results(const EngineResult& a, const EngineResult& b) {
  ASSERT_EQ(a.portfolio_ylt.trials(), b.portfolio_ylt.trials());
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]) << "portfolio trial " << t;
    ASSERT_EQ(a.reinstatement_premium[t], b.reinstatement_premium[t])
        << "reinstatement trial " << t;
  }
  ASSERT_EQ(a.portfolio_occurrence_ylt.trials(), b.portfolio_occurrence_ylt.trials());
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_occurrence_ylt[t], b.portfolio_occurrence_ylt[t])
        << "oep trial " << t;
  }
  ASSERT_EQ(a.contract_ylts.size(), b.contract_ylts.size());
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      ASSERT_EQ(a.contract_ylts[c][t], b.contract_ylts[c][t])
          << "contract " << c << " trial " << t;
    }
  }
  ASSERT_EQ(a.elt_lookups, b.elt_lookups);
  ASSERT_EQ(a.occurrences_processed, b.occurrences_processed);
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

TEST(InMemorySource, OneZeroCopyBlock) {
  const auto w = make_workload(1, 20);
  data::InMemorySource source(w.yelt);
  EXPECT_EQ(source.trials(), w.yelt.trials());
  EXPECT_EQ(source.block_count(), 1u);
  EXPECT_FALSE(source.ephemeral_blocks());

  data::TrialBlock block;
  ASSERT_TRUE(source.next(block));
  EXPECT_EQ(block.yelt.get(), &w.yelt);  // zero-copy: the caller's table
  EXPECT_EQ(block.trial_offset, 0u);
  EXPECT_EQ(block.encoded_bytes, 0u);
  EXPECT_FALSE(source.next(block));
  source.reset();
  ASSERT_TRUE(source.next(block));
}

TEST(EncodedBlockSource, DecodesOneEphemeralBlock) {
  const auto w = make_workload(1, 33);
  ByteWriter writer;
  data::encode(w.yelt, writer);
  data::EncodedBlockSource source(writer.buffer());
  EXPECT_EQ(source.trials(), w.yelt.trials());
  EXPECT_TRUE(source.ephemeral_blocks());

  data::TrialBlock block;
  ASSERT_TRUE(source.next(block));
  ASSERT_EQ(block.yelt->trials(), w.yelt.trials());
  ASSERT_EQ(block.yelt->entries(), w.yelt.entries());
  EXPECT_EQ(block.encoded_bytes, writer.size());
  for (std::uint64_t i = 0; i < w.yelt.entries(); ++i) {
    ASSERT_EQ(block.yelt->events()[i], w.yelt.events()[i]);
    ASSERT_EQ(block.yelt->days()[i], w.yelt.days()[i]);
  }
  EXPECT_FALSE(source.next(block));
}

// The dist-layer wire contract: a damaged or short encoded block is the
// typed CorruptChunkError at construction — garbage bytes can never
// silently decode into trials (a retried worker would otherwise corrupt
// the final YLT without a trace).
TEST(EncodedBlockSource, ShortPayloadThrowsTypedError) {
  const auto w = make_workload(1, 33);
  ByteWriter writer;
  data::encode(w.yelt, writer);
  const auto& bytes = writer.buffer();
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, std::size_t{9}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(data::EncodedBlockSource{
                     std::span<const std::byte>(bytes).subspan(0, len)},
                 CorruptChunkError)
        << "length " << len;
  }
}

TEST(EncodedBlockSource, BitFlippedPayloadThrowsTypedError) {
  const auto w = make_workload(1, 33);
  ByteWriter writer;
  data::encode(w.yelt, writer);
  // Flip a bit in the magic and in the trial count: both structural fields
  // must fail the decode loudly with the typed error.
  for (const std::size_t pos : {std::size_t{1}, std::size_t{13}}) {
    auto bytes = writer.buffer();
    bytes[pos] ^= std::byte{0x10};
    EXPECT_THROW(data::EncodedBlockSource{bytes}, CorruptChunkError)
        << "flip at " << pos;
  }
}

class ChunkedSourceFixture : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    w_ = make_workload();
    path_ = std::string("/tmp/riskan_trial_source_") +
            (GetParam() ? "prefetch" : "sync") + ".yeltc";
    core::save_yelt_chunked(w_.yelt, path_, 100);
  }
  void TearDown() override { remove_file(path_); }

  data::ChunkedFileSource::Options options() const {
    data::ChunkedFileSource::Options o;
    o.prefetch = GetParam();
    return o;
  }

  SmallWorkload w_;
  std::string path_;
};

TEST_P(ChunkedSourceFixture, StreamsBlocksInOrder) {
  data::ChunkedFileSource source(path_, options());
  EXPECT_EQ(source.trials(), w_.yelt.trials());
  EXPECT_EQ(source.block_count(), 8u);  // ceil(777 / 100)
  EXPECT_TRUE(source.ephemeral_blocks());

  data::TrialBlock block;
  TrialId offset = 0;
  std::size_t index = 0;
  while (source.next(block)) {
    EXPECT_EQ(block.index, index);
    EXPECT_EQ(block.trial_offset, offset);
    EXPECT_GT(block.encoded_bytes, 0u);
    // Block contents match the in-memory table's slice.
    for (TrialId t = 0; t < block.yelt->trials(); ++t) {
      const auto expect = w_.yelt.trial_events(offset + t);
      const auto got = block.yelt->trial_events(t);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expect[i]);
      }
    }
    offset += block.yelt->trials();
    ++index;
  }
  EXPECT_EQ(offset, w_.yelt.trials());
  EXPECT_EQ(index, source.block_count());
  EXPECT_EQ(source.stats().blocks_delivered, index);
  EXPECT_GT(source.stats().bytes_read, 0u);

  // reset() rewinds for another full pass.
  source.reset();
  EXPECT_EQ(source.stats().blocks_delivered, 0u);
  std::size_t second_pass = 0;
  while (source.next(block)) {
    ++second_pass;
  }
  EXPECT_EQ(second_pass, source.block_count());
}

INSTANTIATE_TEST_SUITE_P(PrefetchModes, ChunkedSourceFixture, ::testing::Bool());

TEST(ChunkedFileSource, PrefetchPipelineStressManyTinyBlocks) {
  // 1-trial chunks: one block per trial, so the pipeline start/stop and
  // ordering logic is exercised hundreds of times in one pass.
  data::YeltGenConfig yg;
  yg.trials = 300;
  const auto yelt = data::generate_yelt(50, yg);
  const std::string path = "/tmp/riskan_trial_source_stress.yeltc";
  core::save_yelt_chunked(yelt, path, 1);

  data::ChunkedFileSource source(path);
  EXPECT_EQ(source.block_count(), 300u);

  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 50;
  pg.elt_rows = 20;
  const auto portfolio = finance::generate_portfolio(pg);

  EngineConfig config;
  config.backend = Backend::Sequential;
  const auto reference = core::run_aggregate_analysis(portfolio, yelt, config);
  const auto streamed = core::run_aggregate_analysis(portfolio, source, config);
  expect_equal_results(reference, streamed);
  remove_file(path);
}

// ---------------------------------------------------------------------------
// Integrity: checksums and legacy files
// ---------------------------------------------------------------------------

TEST(ChunkedFileChecksums, BitFlipInChunkBodyRaises) {
  const auto w = make_workload(2, 200);
  const std::string path = "/tmp/riskan_trial_source_bitflip.yeltc";
  core::save_yelt_chunked(w.yelt, path, 50);

  auto bytes = read_file(path);
  {
    data::ChunkedFileReader reader(path);
    ASSERT_GT(reader.chunk_size(0), 64u);
  }
  // Flip one bit inside chunk 0's payload (its offsets column).
  const std::size_t victim = 64;
  bytes[victim] ^= std::byte{0x10};
  write_file(path, bytes);

  data::ChunkedFileReader reader(path);
  EXPECT_TRUE(reader.has_checksums());
  EXPECT_THROW((void)reader.read_chunk(0), CorruptChunkError);

  // The streamed engine surfaces the corruption instead of producing a YLT,
  // as the typed IoError (retryable data damage, not a programmer bug).
  EXPECT_THROW((void)core::run_aggregate_streaming(w.portfolio, path), IoError);
  remove_file(path);
}

TEST(ChunkedFileChecksums, CorruptHeaderTrialCountRejectedBeforeSizing) {
  // The per-chunk header peek that sizes the run is outside the CRC, so a
  // flipped bit in the trial-count field must be caught by the size bound
  // (not by an allocation blow-up downstream).
  const auto w = make_workload(1, 120);
  const std::string path = "/tmp/riskan_trial_source_badcount.yeltc";
  core::save_yelt_chunked(w.yelt, path, 40);

  auto bytes = read_file(path);
  // Chunk 0 starts at offset 0; its encoded trial count is the u64 at
  // bytes [8, 16). Blow up a low byte (inside TrialId's width) far past
  // the chunk's byte size, and a high byte (overflowing TrialId).
  auto corrupted = bytes;
  corrupted[11] = std::byte{0x7F};
  write_file(path, corrupted);
  EXPECT_THROW(data::ChunkedFileSource{path}, CorruptChunkError);

  corrupted = bytes;
  corrupted[14] = std::byte{0x7F};
  write_file(path, corrupted);
  EXPECT_THROW(data::ChunkedFileSource{path}, CorruptChunkError);
  remove_file(path);
}

TEST(ChunkedFileChecksums, LegacyV1FilesStillReadable) {
  // Hand-write a version-1 container (sizes-only directory, "CHK1" magic):
  // old files keep reading, just without verification.
  ByteWriter chunk;
  chunk.str("legacy payload");

  ByteWriter file;
  file.bytes(chunk.buffer());
  file.u64(1);                    // directory: count
  file.u64(chunk.size());        // directory: size (no crc in v1)
  file.u32(0x43484B31);          // "CHK1"
  file.u64(chunk.size());        // dir offset
  const std::string path = "/tmp/riskan_trial_source_v1.bin";
  write_file(path, file.buffer());

  data::ChunkedFileReader reader(path);
  ASSERT_EQ(reader.chunk_count(), 1u);
  EXPECT_FALSE(reader.has_checksums());
  const auto payload = reader.read_chunk(0);
  ByteReader r(payload);
  EXPECT_EQ(r.str(), "legacy payload");
  remove_file(path);
}

// ---------------------------------------------------------------------------
// The slice encoder (save path)
// ---------------------------------------------------------------------------

TEST(EncodeYeltSlice, ByteIdenticalToRebuiltBlock) {
  const auto w = make_workload(1, 97);
  const TrialId lo = 13;
  const TrialId hi = 61;

  data::YearEventLossTable::Builder builder(hi - lo);
  for (TrialId t = lo; t < hi; ++t) {
    builder.begin_trial();
    const auto events = w.yelt.trial_events(t);
    const auto days = w.yelt.trial_days(t);
    for (std::size_t i = 0; i < events.size(); ++i) {
      builder.add(events[i], days[i]);
    }
  }
  const auto rebuilt = builder.finish();
  ByteWriter reference;
  data::encode(rebuilt, reference);

  ByteWriter sliced;
  data::encode_yelt_slice(w.yelt, lo, hi, sliced);

  ASSERT_EQ(sliced.size(), reference.size());
  for (std::size_t i = 0; i < sliced.size(); ++i) {
    ASSERT_EQ(sliced.buffer()[i], reference.buffer()[i]) << "byte " << i;
  }

  // Full-range slice == whole-table encode.
  ByteWriter whole;
  data::encode(w.yelt, whole);
  ByteWriter full_slice;
  data::encode_yelt_slice(w.yelt, 0, w.yelt.trials(), full_slice);
  ASSERT_EQ(full_slice.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    ASSERT_EQ(full_slice.buffer()[i], whole.buffer()[i]);
  }

  EXPECT_EQ(data::peek_yelt_trials(
                std::span<const std::byte>(sliced.buffer()).first(data::kYeltHeaderBytes)),
            hi - lo);
}

// ---------------------------------------------------------------------------
// Streamed vs in-memory equivalence matrix
// ---------------------------------------------------------------------------

class StreamedEquivalence
    : public ::testing::TestWithParam<std::tuple<Backend, bool, bool>> {};

TEST_P(StreamedEquivalence, BitIdenticalAcrossBackendsBatchingSecondary) {
  const auto [backend, batch, secondary] = GetParam();
  if ((backend == Backend::Simd || backend == Backend::ThreadedSimd) &&
      !core::exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  const auto w = make_workload();
  const std::string path = "/tmp/riskan_equiv_" + std::to_string(static_cast<int>(backend)) +
                           (batch ? "_b" : "_n") + (secondary ? "_s" : "_m") + ".yeltc";
  core::save_yelt_chunked(w.yelt, path, 128);

  EngineConfig config;
  config.backend = backend;
  config.batch_contracts = batch;
  config.secondary_uncertainty = secondary;
  config.compute_oep = true;
  config.keep_contract_ylts = true;

  const auto reference = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
  const auto streamed = core::run_aggregate_streaming(w.portfolio, path, config);
  expect_equal_results(reference, streamed);
  EXPECT_EQ(streamed.blocks, 7u);  // ceil(777 / 128)
  EXPECT_GT(streamed.bytes_read, 0u);
  EXPECT_LT(streamed.peak_block_bytes, streamed.bytes_read);
  remove_file(path);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StreamedEquivalence,
    ::testing::Combine(::testing::ValuesIn(core::kAllBackends), ::testing::Bool(),
                       ::testing::Bool()));

// The vectorized rows of the same matrix — exercising the out-of-core
// rebind path (plan lowered once, re-bound per block) under the Simd
// executors; skipped on builds/hosts without a wide ISA.
INSTANTIATE_TEST_SUITE_P(
    SimdMatrix, StreamedEquivalence,
    ::testing::Combine(::testing::ValuesIn(core::kSimdBackends), ::testing::Bool(),
                       ::testing::Bool()));

TEST(StreamedEquivalence, TrialBaseOffsetsCompose) {
  // A streamed run under a global trial_base matches the in-memory run
  // under the same base (MapReduce-style composition).
  const auto w = make_workload(3, 200);
  const std::string path = "/tmp/riskan_equiv_base.yeltc";
  core::save_yelt_chunked(w.yelt, path, 64);

  EngineConfig config;
  config.backend = Backend::Sequential;
  config.trial_base = 5'000;
  const auto reference = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
  const auto streamed = core::run_aggregate_streaming(w.portfolio, path, config);
  expect_equal_results(reference, streamed);
  remove_file(path);
}

// ---------------------------------------------------------------------------
// Streamed scenario sweeps
// ---------------------------------------------------------------------------

class StreamedSweep : public ::testing::TestWithParam<Backend> {};

TEST_P(StreamedSweep, BitIdenticalToInMemorySweep) {
  const Backend backend = GetParam();
  if ((backend == Backend::Simd || backend == Backend::ThreadedSimd) &&
      !core::exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  const auto w = make_workload(4, 400);
  const std::string path =
      "/tmp/riskan_sweep_" + std::to_string(static_cast<int>(backend)) + ".yeltc";
  core::save_yelt_chunked(w.yelt, path, 150);

  std::vector<scenario::ScenarioSpec> specs(3);
  specs[0].name = "surge";
  specs[0].loss_scale = 1.25;
  specs[1].name = "exclusions";
  specs[1].excluded_events = {1, 3, 5, 7, 11, 42};
  specs[2].name = "drop";
  specs[2].dropped_contracts = {w.portfolio.contract(0).id()};

  EngineConfig config;
  config.backend = backend;
  config.compute_oep = true;
  config.keep_contract_ylts = true;

  const auto reference = scenario::run_scenario_sweep(w.portfolio, w.yelt, specs, config);
  data::ChunkedFileSource source(path);
  const auto streamed = scenario::run_scenario_sweep(w.portfolio, source, specs, config);

  expect_equal_results(reference.base, streamed.base);
  ASSERT_EQ(reference.scenarios.size(), streamed.scenarios.size());
  for (std::size_t s = 0; s < reference.scenarios.size(); ++s) {
    expect_equal_results(reference.scenarios[s], streamed.scenarios[s]);
  }
  EXPECT_EQ(reference.plan.slots, streamed.plan.slots);
  EXPECT_EQ(reference.plan.distinct_masks, streamed.plan.distinct_masks);
  remove_file(path);
}

INSTANTIATE_TEST_SUITE_P(Backends, StreamedSweep,
                         ::testing::ValuesIn(core::kAllBackends));
INSTANTIATE_TEST_SUITE_P(SimdBackends, StreamedSweep,
                         ::testing::ValuesIn(core::kSimdBackends));

TEST(StreamedBatch, MultiBlockSourceThroughRunPortfolioBatch) {
  const auto w = make_workload(3, 250);
  const std::string path = "/tmp/riskan_batch_source.yeltc";
  core::save_yelt_chunked(w.yelt, path, 100);

  EngineConfig config;
  config.backend = Backend::Threaded;
  config.trial_grain = 32;
  const auto reference = core::run_portfolio_batch(w.portfolio, w.yelt, config);
  data::ChunkedFileSource source(path);
  const auto streamed = core::run_portfolio_batch(w.portfolio, source, config);
  expect_equal_results(reference, streamed);
  remove_file(path);
}

}  // namespace
}  // namespace riskan
