// Warehouse roll-up cube: consistency of pre-computed views with the
// underlying YLTs.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "util/require.hpp"
#include "warehouse/cube.hpp"

namespace riskan::warehouse {
namespace {

class CubeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    finance::PortfolioGenConfig pg;
    pg.contracts = 24;  // spans all perils/regions/lobs via round-robin
    pg.catalog_events = 300;
    pg.elt_rows = 50;
    portfolio_ = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = 400;
    yelt_ = data::generate_yelt(300, yg);

    core::EngineConfig config;
    config.backend = core::Backend::Sequential;
    config.keep_contract_ylts = true;
    result_ = core::run_aggregate_analysis(portfolio_, yelt_, config);
  }

  finance::Portfolio portfolio_;
  data::YearEventLossTable yelt_;
  core::EngineResult result_;
};

TEST_F(CubeFixture, GrandTotalMatchesPortfolioYlt) {
  const RiskCube cube(portfolio_, result_);
  const auto& total = cube.total();
  EXPECT_EQ(total.contracts, portfolio_.size());
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_NEAR(total.ylt[t], result_.portfolio_ylt[t], 1e-6);
  }
  EXPECT_GE(total.summary.tvar_99, total.summary.var_99);
}

TEST_F(CubeFixture, SingleDimensionSlicesPartitionTheTotal) {
  const RiskCube cube(portfolio_, result_);
  // Summing the peril slices trial-wise must reproduce the grand total.
  data::YearLossTable sum(yelt_.trials());
  std::size_t contracts = 0;
  for (int p = 0; p < kPerilCount; ++p) {
    CubeQuery q;
    q.peril = static_cast<Peril>(p);
    const auto* cell = cube.query(q);
    if (cell == nullptr) {
      continue;
    }
    sum += cell->ylt;
    contracts += cell->contracts;
  }
  EXPECT_EQ(contracts, portfolio_.size());
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_NEAR(sum[t], cube.total().ylt[t], 1e-6);
  }
}

TEST_F(CubeFixture, FullCoordinateCellMatchesManualAggregation) {
  const RiskCube cube(portfolio_, result_);
  const auto& contract = portfolio_.contract(0);
  CubeQuery q{contract.peril(), contract.region(), contract.lob()};
  const auto* cell = cube.query(q);
  ASSERT_NE(cell, nullptr);

  data::YearLossTable manual(yelt_.trials());
  std::size_t count = 0;
  for (std::size_t c = 0; c < portfolio_.size(); ++c) {
    const auto& k = portfolio_.contract(c);
    if (k.peril() == contract.peril() && k.region() == contract.region() &&
        k.lob() == contract.lob()) {
      manual += result_.contract_ylts[c];
      ++count;
    }
  }
  EXPECT_EQ(cell->contracts, count);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_NEAR(cell->ylt[t], manual[t], 1e-9);
  }
}

TEST_F(CubeFixture, QueriesMissingCombinationsReturnNull) {
  const RiskCube cube(portfolio_, result_);
  // The generator assigns peril c%5, region c%5, lob c%4 — peril 0 always
  // pairs with region 0, so (peril 0, region 1) never exists.
  CubeQuery q;
  q.peril = Peril::Earthquake;
  q.region = Region::Europe;
  EXPECT_EQ(cube.query(q), nullptr);
}

TEST_F(CubeFixture, StatsAreFilled) {
  const RiskCube cube(portfolio_, result_);
  const auto& stats = cube.stats();
  EXPECT_GT(stats.base_cells, 0u);
  EXPECT_EQ(stats.rollup_views, 8u);
  EXPECT_GE(stats.rollup_cells, stats.base_cells);
  EXPECT_GE(stats.precompute_seconds, 0.0);
}

TEST_F(CubeFixture, SubtotalsNeverExceedTotalTail) {
  const RiskCube cube(portfolio_, result_);
  // Mean is additive: slice means sum to the total mean. (Tail metrics are
  // not additive — that is the diversification point — but each slice's
  // mean must be <= total mean.)
  const auto total_mean = cube.total().summary.mean_annual_loss;
  for (int p = 0; p < kPerilCount; ++p) {
    CubeQuery q;
    q.peril = static_cast<Peril>(p);
    if (const auto* cell = cube.query(q)) {
      EXPECT_LE(cell->summary.mean_annual_loss, total_mean + 1e-9);
    }
  }
}

TEST_F(CubeFixture, TopConcentrationsAreSortedFullCells) {
  const RiskCube cube(portfolio_, result_);
  const auto top = cube.top_concentrations(5);
  ASSERT_FALSE(top.empty());
  ASSERT_LE(top.size(), 5u);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ASSERT_NE(top[i].cell, nullptr);
    EXPECT_TRUE(top[i].coordinates.peril.has_value());
    EXPECT_TRUE(top[i].coordinates.region.has_value());
    EXPECT_TRUE(top[i].coordinates.lob.has_value());
    if (i > 0) {
      EXPECT_GE(top[i - 1].cell->summary.tvar_99, top[i].cell->summary.tvar_99);
    }
    // No slice's tail exceeds the whole book's worst case.
    EXPECT_LE(top[i].cell->summary.max_loss, cube.total().summary.max_loss + 1e-9);
  }
  EXPECT_THROW((void)cube.top_concentrations(0), ContractViolation);
}

TEST(Cube, RequiresContractYlts) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 50;
  pg.elt_rows = 10;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 50;
  const auto yelt = data::generate_yelt(50, yg);
  core::EngineConfig config;
  config.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);
  EXPECT_THROW(RiskCube(portfolio, result), ContractViolation);
}

}  // namespace
}  // namespace riskan::warehouse
