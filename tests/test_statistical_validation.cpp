// Statistical validation of the full chain against closed-form
// expectations: for an unlimited ground-up layer the engine's mean annual
// loss must equal the catalogue's pure premium  sum_e rate_e * mean_e,
// and secondary uncertainty must preserve that mean (beta sampling is
// mean-preserving; occurrence terms are the only nonlinearity and are
// disabled here).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "catmod/analytic_ep.hpp"
#include "catmod/event_catalog.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/aggregate_engine.hpp"
#include "core/simd.hpp"
#include "data/elt.hpp"
#include "finance/contract.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

struct Chain {
  catmod::EventCatalog catalog;
  data::EventLossTable elt;
  finance::Portfolio portfolio;
  double pure_premium = 0.0;  // sum rate_e * mean_e
};

Chain build_chain(std::uint64_t seed) {
  catmod::CatalogConfig cc;
  cc.events = 600;
  cc.seed = seed;
  Chain chain{catmod::EventCatalog::generate(cc), {}, {}, 0.0};

  std::vector<data::EltRow> rows;
  Xoshiro256ss rng(seed + 1);
  for (EventId e = 0; e < 600; ++e) {
    const Money mean = sample_truncated_pareto(rng, 1.3, 1e4, 1e7);
    rows.push_back({e, mean, mean * 0.5, mean * 4.0});
    chain.pure_premium += chain.catalog.event(e).annual_rate * mean;
  }
  chain.elt = data::EventLossTable::from_rows(std::move(rows));

  finance::Layer ground_up;
  ground_up.id = 0;
  ground_up.terms.occ_retention = 0.0;
  ground_up.terms.occ_limit = 1e18;
  ground_up.terms.agg_limit = 1e18;
  chain.portfolio.add(finance::Contract(0, chain.elt, {ground_up}));
  return chain;
}

class ChainValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainValidation, EngineMeanMatchesPurePremium) {
  const auto chain = build_chain(GetParam());

  catmod::CatalogYeltConfig yc;
  yc.trials = 30'000;
  yc.seed = GetParam() * 13 + 1;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(chain.portfolio, yelt, config);

  // Monte Carlo error: the annual loss is a compound Poisson sum of
  // heavy-ish severities; 30k trials pin the mean to a few percent.
  EXPECT_NEAR(result.portfolio_ylt.mean() / chain.pure_premium, 1.0, 0.06)
      << "pure premium " << chain.pure_premium;
}

TEST_P(ChainValidation, SecondarySamplingPreservesTheMean) {
  const auto chain = build_chain(GetParam());
  catmod::CatalogYeltConfig yc;
  yc.trials = 30'000;
  yc.seed = GetParam() * 17 + 3;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  core::EngineConfig off;
  off.secondary_uncertainty = false;
  off.compute_oep = false;
  off.keep_contract_ylts = false;
  core::EngineConfig on = off;
  on.secondary_uncertainty = true;

  const auto base = core::run_aggregate_analysis(chain.portfolio, yelt, off);
  const auto sampled = core::run_aggregate_analysis(chain.portfolio, yelt, on);

  // Without occurrence terms the beta draw is unbiased, so the means agree
  // up to sampling error (the sampled run has extra variance).
  EXPECT_NEAR(sampled.portfolio_ylt.mean() / base.portfolio_ylt.mean(), 1.0, 0.05);

  // The vectorized backends run the same chain: bit-identical to the
  // sequential sampled result, so the statistical property transfers by
  // construction — and this asserts it really does at 30k-trial scale.
  if (core::exec::simd_available()) {
    for (const core::Backend backend :
         {core::Backend::Simd, core::Backend::ThreadedSimd}) {
      core::EngineConfig wide = on;
      wide.backend = backend;
      const auto vec = core::run_aggregate_analysis(chain.portfolio, yelt, wide);
      ASSERT_EQ(vec.portfolio_ylt.trials(), sampled.portfolio_ylt.trials());
      for (TrialId t = 0; t < vec.portfolio_ylt.trials(); ++t) {
        ASSERT_EQ(vec.portfolio_ylt[t], sampled.portfolio_ylt[t])
            << core::to_string(backend) << " trial " << t;
      }
      EXPECT_NEAR(vec.portfolio_ylt.mean() / base.portfolio_ylt.mean(), 1.0, 0.05)
          << core::to_string(backend);
    }
  }
}

TEST_P(ChainValidation, OccurrenceTermsOnlyEverReduce) {
  const auto chain = build_chain(GetParam());
  catmod::CatalogYeltConfig yc;
  yc.trials = 5'000;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  // Same book with a retention: every trial's loss must weakly decrease.
  finance::Layer with_retention;
  with_retention.id = 0;
  with_retention.terms.occ_retention = 1e5;
  with_retention.terms.occ_limit = 1e18;
  with_retention.terms.agg_limit = 1e18;
  finance::Portfolio retained;
  retained.add(finance::Contract(0, chain.elt, {with_retention}));

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto gross = core::run_aggregate_analysis(chain.portfolio, yelt, config);
  const auto net = core::run_aggregate_analysis(retained, yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_LE(net.portfolio_ylt[t], gross.portfolio_ylt[t] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainValidation, ::testing::Values(101u, 202u, 303u));

TEST(ChainValidation, AnnualLossVarianceMatchesCompoundPoisson) {
  // Var of a compound Poisson sum = Lambda * E[X^2] under rate-weighted
  // severity X. Check the simulated variance against it (no terms, no
  // secondary).
  const auto chain = build_chain(404);

  double lambda = 0.0;
  double second_moment_rate = 0.0;  // sum rate_e * mean_e^2
  for (EventId e = 0; e < chain.catalog.size(); ++e) {
    lambda += chain.catalog.event(e).annual_rate;
    const auto row = chain.elt.row(chain.elt.find(e));
    second_moment_rate += chain.catalog.event(e).annual_rate * row.mean_loss * row.mean_loss;
  }

  catmod::CatalogYeltConfig yc;
  yc.trials = 60'000;
  yc.seed = 9;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);
  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(chain.portfolio, yelt, config);

  OnlineStats stats;
  for (const double loss : result.portfolio_ylt.losses()) {
    stats.add(loss);
  }
  // Var = Lambda * E[X^2] = sum rate_e * mean_e^2 for the compound sum.
  EXPECT_NEAR(stats.variance() / second_moment_rate, 1.0, 0.20);
}

// ---------------------------------------------------------------------------
// Adaptive statistical acceptance — the CIs must mean what they claim
// ---------------------------------------------------------------------------
//
// The adaptive controller stops when its batch-means intervals close under
// target; these tests hold those intervals to their statistical promise
// against closed forms: the mean against the pure premium, the occurrence
// VaR against the analytic exceedance curve's inverse. Each repetition is
// a fixed seed, so the suite is deterministic — the binomial tolerance
// (coverage misses allowed across repetitions) prices the fact that a c%
// CI is ALLOWED to miss (1-c)% of the time, not flakiness.

core::adaptive::AdaptiveConfig acceptance_config() {
  core::adaptive::AdaptiveConfig ad;
  ad.target_rel_err = 0.15;
  ad.confidence = 0.90;
  ad.tail_level = 0.90;
  ad.block_trials = 500;
  ad.min_trials = 2'000;
  ad.min_batches = 4;
  ad.metrics = core::adaptive::kMean | core::adaptive::kVar | core::adaptive::kTvar |
               core::adaptive::kOccVar;
  return ad;
}

TEST(AdaptiveAcceptance, ReportedCisCoverTheClosedForms) {
  const auto chain = build_chain(515);
  // True occurrence VaR at tail level q = loss with analytic return period
  // 1 / (1 - q): the closed-form inverse of P(max occ loss > x).
  const double tail = acceptance_config().tail_level;
  const Money true_occ_var =
      catmod::analytic_oep_loss_at(chain.catalog, chain.elt, 1.0 / (1.0 - tail));
  ASSERT_GT(true_occ_var, 0.0);

  constexpr int kReps = 20;
  int mean_covered = 0;
  int occ_var_covered = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    catmod::CatalogYeltConfig yc;
    yc.trials = 16'000;
    yc.seed = 7'000 + static_cast<std::uint64_t>(rep) * 31;
    const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

    core::EngineConfig config;
    config.backend = core::Backend::Sequential;
    config.secondary_uncertainty = false;
    config.compute_oep = true;
    config.keep_contract_ylts = false;
    config.adaptive = acceptance_config();
    const auto result = core::run_aggregate_analysis(chain.portfolio, yelt, config);
    ASSERT_TRUE(result.adaptive.enabled);

    const auto& mean = result.adaptive.estimate(core::adaptive::kMean);
    if (std::abs(mean.estimate - chain.pure_premium) <= mean.half_width) {
      ++mean_covered;
    }
    const auto& occ_var = result.adaptive.estimate(core::adaptive::kOccVar);
    if (std::abs(occ_var.estimate - true_occ_var) <= occ_var.half_width) {
      ++occ_var_covered;
    }
  }

  // 90% intervals over 20 repetitions: P(X <= 13 | p = 0.9) ~ 0.002, so
  // demanding 14 covers catches broken CIs without failing honest ones.
  // The occurrence VaR gets one extra miss of slack: the loss distribution
  // is atomic (600 event means, secondary off) while the analytic inverse
  // interpolates between atoms.
  EXPECT_GE(mean_covered, 14) << "mean CI coverage " << mean_covered << "/" << kReps;
  EXPECT_GE(occ_var_covered, 13)
      << "occ VaR CI coverage " << occ_var_covered << "/" << kReps;
}

TEST(AdaptiveAcceptance, StopsEarlyWithTailMetricsNearTheFullRun) {
  // The headline trade: a fraction of the trials, the same tail metrics.
  // Per seed, the adaptive stopping prefix's VaR/TVaR must sit within
  // twice the target relative error of the full fixed-budget run's, while
  // consuming at most 3/4 of the budget.
  const auto chain = build_chain(616);
  const double tail = acceptance_config().tail_level;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    catmod::CatalogYeltConfig yc;
    yc.trials = 16'000;
    yc.seed = seed;
    const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

    core::EngineConfig fixed;
    fixed.backend = core::Backend::Sequential;
    fixed.secondary_uncertainty = false;
    fixed.compute_oep = false;
    fixed.keep_contract_ylts = false;
    core::EngineConfig adaptive = fixed;
    adaptive.adaptive = acceptance_config();
    adaptive.adaptive.metrics =
        core::adaptive::kMean | core::adaptive::kVar | core::adaptive::kTvar;

    const auto full = core::run_aggregate_analysis(chain.portfolio, yelt, fixed);
    const auto early = core::run_aggregate_analysis(chain.portfolio, yelt, adaptive);

    ASSERT_EQ(early.adaptive.stop_reason, core::adaptive::StopReason::Converged)
        << "seed " << seed;
    EXPECT_LE(early.adaptive.trials_run, 12'000u) << "seed " << seed;

    std::vector<double> full_losses(full.portfolio_ylt.losses().begin(),
                                    full.portfolio_ylt.losses().end());
    std::vector<double> early_losses(early.portfolio_ylt.losses().begin(),
                                     early.portfolio_ylt.losses().end());
    std::sort(full_losses.begin(), full_losses.end());
    std::sort(early_losses.begin(), early_losses.end());

    const double tolerance = 2.0 * adaptive.adaptive.target_rel_err;
    EXPECT_NEAR(quantile_sorted(early_losses, tail) / quantile_sorted(full_losses, tail),
                1.0, tolerance)
        << "VaR drift at seed " << seed;
    EXPECT_NEAR(
        tail_mean_above(early_losses, tail) / tail_mean_above(full_losses, tail), 1.0,
        tolerance)
        << "TVaR drift at seed " << seed;
  }
}

}  // namespace
}  // namespace riskan
