// Statistical validation of the full chain against closed-form
// expectations: for an unlimited ground-up layer the engine's mean annual
// loss must equal the catalogue's pure premium  sum_e rate_e * mean_e,
// and secondary uncertainty must preserve that mean (beta sampling is
// mean-preserving; occurrence terms are the only nonlinearity and are
// disabled here).
#include <gtest/gtest.h>

#include <cmath>

#include "catmod/event_catalog.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/aggregate_engine.hpp"
#include "data/elt.hpp"
#include "finance/contract.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

struct Chain {
  catmod::EventCatalog catalog;
  data::EventLossTable elt;
  finance::Portfolio portfolio;
  double pure_premium = 0.0;  // sum rate_e * mean_e
};

Chain build_chain(std::uint64_t seed) {
  catmod::CatalogConfig cc;
  cc.events = 600;
  cc.seed = seed;
  Chain chain{catmod::EventCatalog::generate(cc), {}, {}, 0.0};

  std::vector<data::EltRow> rows;
  Xoshiro256ss rng(seed + 1);
  for (EventId e = 0; e < 600; ++e) {
    const Money mean = sample_truncated_pareto(rng, 1.3, 1e4, 1e7);
    rows.push_back({e, mean, mean * 0.5, mean * 4.0});
    chain.pure_premium += chain.catalog.event(e).annual_rate * mean;
  }
  chain.elt = data::EventLossTable::from_rows(std::move(rows));

  finance::Layer ground_up;
  ground_up.id = 0;
  ground_up.terms.occ_retention = 0.0;
  ground_up.terms.occ_limit = 1e18;
  ground_up.terms.agg_limit = 1e18;
  chain.portfolio.add(finance::Contract(0, chain.elt, {ground_up}));
  return chain;
}

class ChainValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainValidation, EngineMeanMatchesPurePremium) {
  const auto chain = build_chain(GetParam());

  catmod::CatalogYeltConfig yc;
  yc.trials = 30'000;
  yc.seed = GetParam() * 13 + 1;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(chain.portfolio, yelt, config);

  // Monte Carlo error: the annual loss is a compound Poisson sum of
  // heavy-ish severities; 30k trials pin the mean to a few percent.
  EXPECT_NEAR(result.portfolio_ylt.mean() / chain.pure_premium, 1.0, 0.06)
      << "pure premium " << chain.pure_premium;
}

TEST_P(ChainValidation, SecondarySamplingPreservesTheMean) {
  const auto chain = build_chain(GetParam());
  catmod::CatalogYeltConfig yc;
  yc.trials = 30'000;
  yc.seed = GetParam() * 17 + 3;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  core::EngineConfig off;
  off.secondary_uncertainty = false;
  off.compute_oep = false;
  off.keep_contract_ylts = false;
  core::EngineConfig on = off;
  on.secondary_uncertainty = true;

  const auto base = core::run_aggregate_analysis(chain.portfolio, yelt, off);
  const auto sampled = core::run_aggregate_analysis(chain.portfolio, yelt, on);

  // Without occurrence terms the beta draw is unbiased, so the means agree
  // up to sampling error (the sampled run has extra variance).
  EXPECT_NEAR(sampled.portfolio_ylt.mean() / base.portfolio_ylt.mean(), 1.0, 0.05);
}

TEST_P(ChainValidation, OccurrenceTermsOnlyEverReduce) {
  const auto chain = build_chain(GetParam());
  catmod::CatalogYeltConfig yc;
  yc.trials = 5'000;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  // Same book with a retention: every trial's loss must weakly decrease.
  finance::Layer with_retention;
  with_retention.id = 0;
  with_retention.terms.occ_retention = 1e5;
  with_retention.terms.occ_limit = 1e18;
  with_retention.terms.agg_limit = 1e18;
  finance::Portfolio retained;
  retained.add(finance::Contract(0, chain.elt, {with_retention}));

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto gross = core::run_aggregate_analysis(chain.portfolio, yelt, config);
  const auto net = core::run_aggregate_analysis(retained, yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_LE(net.portfolio_ylt[t], gross.portfolio_ylt[t] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainValidation, ::testing::Values(101u, 202u, 303u));

TEST(ChainValidation, AnnualLossVarianceMatchesCompoundPoisson) {
  // Var of a compound Poisson sum = Lambda * E[X^2] under rate-weighted
  // severity X. Check the simulated variance against it (no terms, no
  // secondary).
  const auto chain = build_chain(404);

  double lambda = 0.0;
  double second_moment_rate = 0.0;  // sum rate_e * mean_e^2
  for (EventId e = 0; e < chain.catalog.size(); ++e) {
    lambda += chain.catalog.event(e).annual_rate;
    const auto row = chain.elt.row(chain.elt.find(e));
    second_moment_rate += chain.catalog.event(e).annual_rate * row.mean_loss * row.mean_loss;
  }

  catmod::CatalogYeltConfig yc;
  yc.trials = 60'000;
  yc.seed = 9;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);
  core::EngineConfig config;
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(chain.portfolio, yelt, config);

  OnlineStats stats;
  for (const double loss : result.portfolio_ylt.losses()) {
    stats.add(loss);
  }
  // Var = Lambda * E[X^2] = sum rate_e * mean_e^2 for the compound sum.
  EXPECT_NEAR(stats.variance() / second_moment_rate, 1.0, 0.20);
}

}  // namespace
}  // namespace riskan
