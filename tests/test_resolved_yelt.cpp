// ResolvedYelt — the pre-joined event→row resolution — and its cache.
//
// Two layers of guarantee:
//   1. the resolution itself matches EventLossTable::find slot for slot;
//   2. the engine produces bit-identical YLTs (portfolio, contract, OEP,
//      reinstatement) with the resolver on and off, across backends, grain
//      sizes, and secondary-uncertainty settings — the resolver is a pure
//      hoist, not a semantic change.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "data/resolved_yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::data {
namespace {

EventLossTable small_elt() {
  return EventLossTable::from_rows({
      {2, 10.0, 1.0, 20.0},
      {5, 30.0, 2.0, 60.0},
      {9, 70.0, 5.0, 140.0},
  });
}

YearEventLossTable small_yelt() {
  YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(2, 1);
  builder.add(7, 2);  // not in the ELT
  builder.begin_trial();  // empty year
  builder.begin_trial();
  builder.add(9, 3);
  builder.add(5, 4);
  builder.add(2, 5);
  return builder.finish();
}

TEST(ResolvedYelt, MatchesEltFindPerOccurrence) {
  const auto elt = small_elt();
  const auto yelt = small_yelt();
  const auto resolved = ResolvedYelt::build(elt, yelt);

  ASSERT_EQ(resolved.size(), yelt.entries());
  const auto events = yelt.events();
  const auto rows = resolved.rows();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto expected = elt.find(events[i]);
    if (expected == EventLossTable::npos) {
      EXPECT_EQ(rows[i], ResolvedYelt::kNoLoss) << "occurrence " << i;
    } else {
      EXPECT_EQ(rows[i], static_cast<std::uint32_t>(expected)) << "occurrence " << i;
    }
  }
  EXPECT_EQ(resolved.hits(), 4u);  // event 7 misses
  EXPECT_EQ(resolved.byte_size(), yelt.entries() * sizeof(std::uint32_t));
}

TEST(ResolvedYelt, EmptyTablesResolveEmpty) {
  const auto elt = EventLossTable::from_rows({});
  const auto yelt = small_yelt();
  const auto resolved = ResolvedYelt::build(elt, yelt);
  EXPECT_EQ(resolved.hits(), 0u);
  for (const auto row : resolved.rows()) {
    EXPECT_EQ(row, ResolvedYelt::kNoLoss);
  }
}

TEST(ResolvedYelt, ParallelBuildMatchesSequentialBuild) {
  YeltGenConfig yg;
  yg.trials = 2'000;
  const auto yelt = generate_yelt(500, yg);
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 500;
  pg.elt_rows = 120;
  const auto portfolio = finance::generate_portfolio(pg);
  const auto& elt = portfolio.contract(0).elt();

  const auto parallel = ResolvedYelt::build(elt, yelt, ParallelConfig{nullptr, 0});
  const auto tiny_grain = ResolvedYelt::build(elt, yelt, ParallelConfig{nullptr, 64});
  ASSERT_EQ(parallel.size(), tiny_grain.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel.rows()[i], tiny_grain.rows()[i]);
  }
  EXPECT_EQ(parallel.hits(), tiny_grain.hits());
}

TEST(ResolverCache, SecondLookupHitsAndSharesTheResolution) {
  const auto elt = small_elt();
  const auto yelt = small_yelt();
  ResolverCache cache;

  const auto first = cache.get_or_build(elt, yelt);
  const auto second = cache.get_or_build(elt, yelt);
  EXPECT_EQ(first.get(), second.get());  // same shared resolution
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.miss_count(), 1u);
  EXPECT_EQ(cache.hit_count(), 1u);
}

TEST(ResolverCache, DistinctTablesGetDistinctEntries) {
  const auto elt_a = small_elt();
  const auto elt_b = EventLossTable::from_rows({{2, 10.0, 1.0, 20.0}});
  const auto yelt = small_yelt();
  ResolverCache cache;

  const auto a = cache.get_or_build(elt_a, yelt);
  const auto b = cache.get_or_build(elt_b, yelt);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(a->hits(), 4u);
  EXPECT_EQ(b->hits(), 2u);  // only event 2 resolves
}

TEST(ResolverCache, EvictsFifoPastCapacity) {
  const auto yelt = small_yelt();
  ResolverCache cache;
  std::vector<EventLossTable> elts;
  elts.reserve(ResolverCache::kMaxEntries + 8);
  for (std::size_t i = 0; i < ResolverCache::kMaxEntries + 8; ++i) {
    elts.push_back(EventLossTable::from_rows(
        {{static_cast<EventId>(i + 1), 1.0, 0.0, 2.0}}));
    cache.get_or_build(elts.back(), yelt);
  }
  EXPECT_EQ(cache.size(), ResolverCache::kMaxEntries);
}

}  // namespace
}  // namespace riskan::data

namespace riskan::core {
namespace {

struct EquivalenceWorkload {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

EquivalenceWorkload equivalence_workload() {
  EquivalenceWorkload w;
  finance::PortfolioGenConfig pg;
  pg.contracts = 6;
  pg.catalog_events = 800;
  pg.elt_rows = 150;
  pg.layers_per_contract = 3;  // resolution shared across layers
  pg.seed = 99;
  w.portfolio = finance::generate_portfolio(pg);

  data::YeltGenConfig yg;
  yg.trials = 1'500;
  yg.seed = 7;
  w.yelt = data::generate_yelt(800, yg);
  return w;
}

void expect_identical(const EngineResult& a, const EngineResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.portfolio_ylt.trials(), b.portfolio_ylt.trials()) << what;
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]) << what << " AEP trial " << t;
    ASSERT_EQ(a.portfolio_occurrence_ylt[t], b.portfolio_occurrence_ylt[t])
        << what << " OEP trial " << t;
    ASSERT_EQ(a.reinstatement_premium[t], b.reinstatement_premium[t])
        << what << " reinstatement trial " << t;
  }
  ASSERT_EQ(a.contract_ylts.size(), b.contract_ylts.size()) << what;
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      ASSERT_EQ(a.contract_ylts[c][t], b.contract_ylts[c][t])
          << what << " contract " << c << " trial " << t;
    }
  }
}

TEST(ResolverEquivalence, BitIdenticalAcrossBackendsGrainsAndSecondary) {
  const auto w = equivalence_workload();

  for (const bool secondary : {false, true}) {
    for (const Backend backend : kHostBackends) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{97}}) {
        if (backend == Backend::Sequential && grain != 0) {
          continue;  // grain only affects the threaded backend
        }
        EngineConfig config;
        config.backend = backend;
        config.secondary_uncertainty = secondary;
        config.trial_grain = grain;

        config.use_resolver = false;
        const auto naive = run_aggregate_analysis(w.portfolio, w.yelt, config);
        config.use_resolver = true;
        const auto resolved = run_aggregate_analysis(w.portfolio, w.yelt, config);

        expect_identical(naive, resolved,
                         std::string(to_string(backend)) +
                             (secondary ? "/secondary" : "/means") + "/grain=" +
                             std::to_string(grain));
        // Host backends share the found-lookup telemetry semantics (the
        // device backend counts nonzero scratch entries instead).
        EXPECT_EQ(naive.elt_lookups, resolved.elt_lookups);
      }
    }
  }
}

TEST(ResolverEquivalence, DeviceSimMatchesNaiveSequential) {
  const auto w = equivalence_workload();

  EngineConfig config;
  config.backend = Backend::Sequential;
  config.use_resolver = false;
  const auto naive = run_aggregate_analysis(w.portfolio, w.yelt, config);

  config.backend = Backend::DeviceSim;
  config.use_resolver = true;
  config.device_elt_chunk_rows = 64;  // cap constant-memory residency per table
  const auto device = run_aggregate_analysis(w.portfolio, w.yelt, config);

  expect_identical(naive, device, "device-sim resolver vs naive sequential");
}

TEST(ResolverEquivalence, SharedCacheReusedAcrossRuns) {
  const auto w = equivalence_workload();
  data::ResolverCache cache;

  EngineConfig config;
  config.backend = Backend::Threaded;
  config.resolver_cache = &cache;

  // One resolution per contract; layers share it without re-probing the
  // cache, so the first run is all misses and no hits.
  const auto first = run_aggregate_analysis(w.portfolio, w.yelt, config);
  EXPECT_EQ(cache.miss_count(), w.portfolio.size());
  EXPECT_EQ(cache.hit_count(), 0u);

  // The second run over the same tables resolves nothing.
  const auto second = run_aggregate_analysis(w.portfolio, w.yelt, config);
  EXPECT_EQ(cache.miss_count(), w.portfolio.size());
  EXPECT_EQ(cache.hit_count(), w.portfolio.size());
  expect_identical(first, second, "second run from cache");
}

}  // namespace
}  // namespace riskan::core
