// Portfolio-batched execution — one YELT pass serving every contract.
//
// The batched path is a pure loop-nest inversion of the per-contract
// engine: same per-occurrence terms, same accumulation order per output
// slot, so every result (portfolio AEP, per-contract YLTs, OEP,
// reinstatement premium, lookup telemetry) must be bit-identical across
// backends, grain sizes and secondary-uncertainty settings. These tests
// are the contract that lets callers flip `batch_contracts` on without
// re-validating numbers.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/simd.hpp"
#include "data/resolved_yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::core {
namespace {

/// Every host backend plus — when this build/host dispatches a wide ISA —
/// the Simd pair, so the equivalence matrices grow the vectorized rows
/// automatically on SIMD-enabled builds.
std::vector<Backend> backends_with_simd() {
  std::vector<Backend> backends(std::begin(kAllBackends), std::end(kAllBackends));
  if (exec::simd_available()) {
    backends.insert(backends.end(), std::begin(kSimdBackends), std::end(kSimdBackends));
  }
  return backends;
}

finance::Portfolio book(std::size_t contracts, int layers, std::uint64_t seed = 99,
                        EventId catalog = 800, std::size_t elt_rows = 150) {
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = catalog;
  pg.elt_rows = elt_rows;
  pg.layers_per_contract = layers;
  pg.seed = seed;
  return finance::generate_portfolio(pg);
}

data::YearEventLossTable lens(TrialId trials, EventId catalog = 800,
                              std::uint64_t seed = 7) {
  data::YeltGenConfig yg;
  yg.trials = trials;
  yg.seed = seed;
  return data::generate_yelt(catalog, yg);
}

void expect_identical(const EngineResult& a, const EngineResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.portfolio_ylt.trials(), b.portfolio_ylt.trials()) << what;
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]) << what << " AEP trial " << t;
    ASSERT_EQ(a.reinstatement_premium[t], b.reinstatement_premium[t])
        << what << " reinstatement trial " << t;
  }
  ASSERT_EQ(a.portfolio_occurrence_ylt.trials(), b.portfolio_occurrence_ylt.trials())
      << what;
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_occurrence_ylt[t], b.portfolio_occurrence_ylt[t])
        << what << " OEP trial " << t;
  }
  ASSERT_EQ(a.contract_ylts.size(), b.contract_ylts.size()) << what;
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      ASSERT_EQ(a.contract_ylts[c][t], b.contract_ylts[c][t])
          << what << " contract " << c << " trial " << t;
    }
  }
}

TEST(PortfolioBatch, BitIdenticalAcrossBackendsGrainsAndSecondary) {
  const auto portfolio = book(/*contracts=*/6, /*layers=*/3);
  const auto yelt = lens(1'500);

  for (const bool secondary : {false, true}) {
    for (const Backend backend : backends_with_simd()) {
      for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{97}}) {
        if (backend != Backend::Threaded && backend != Backend::ThreadedSimd &&
            grain != 0) {
          continue;  // grain only affects the chunk-partitioned backends
        }
        EngineConfig config;
        config.backend = backend;
        config.secondary_uncertainty = secondary;
        config.trial_grain = grain;

        config.batch_contracts = false;
        const auto per_contract = run_aggregate_analysis(portfolio, yelt, config);
        config.batch_contracts = true;
        const auto batched = run_aggregate_analysis(portfolio, yelt, config);

        expect_identical(per_contract, batched,
                         std::string(to_string(backend)) +
                             (secondary ? "/secondary" : "/means") + "/grain=" +
                             std::to_string(grain));
        EXPECT_EQ(per_contract.elt_lookups, batched.elt_lookups);
        EXPECT_EQ(per_contract.occurrences_processed, batched.occurrences_processed);
      }
    }
  }
}

TEST(PortfolioBatch, DeviceSimBatchedMatchesPerContract) {
  // Since the executor refactor the batched plan runs natively on the
  // simulated device (no per-contract fallback): one launch sequence
  // serves every contract, bit-identically, through both entry points.
  const auto portfolio = book(/*contracts=*/4, /*layers=*/2);
  const auto yelt = lens(800);

  EngineConfig config;
  config.backend = Backend::DeviceSim;
  config.batch_contracts = false;
  const auto per_contract = run_aggregate_analysis(portfolio, yelt, config);

  // Through both entry points: the engine route and the runner route.
  config.batch_contracts = true;
  const auto via_engine = run_aggregate_analysis(portfolio, yelt, config);
  const auto via_runner = run_portfolio_batch(portfolio, yelt, config);
  expect_identical(per_contract, via_engine, "device-sim via engine");
  expect_identical(per_contract, via_runner, "device-sim via runner");
  EXPECT_EQ(via_engine.elt_lookups, per_contract.elt_lookups);
}

TEST(PortfolioBatch, DeviceSimBlockDimSweepIsBitIdentical) {
  // The block partition is pure scheduling: 32/128/512-trial blocks (and
  // the host reference) must agree to the bit on the batched plan.
  const auto portfolio = book(/*contracts=*/5, /*layers=*/2);
  const auto yelt = lens(1'100);

  EngineConfig config;
  config.backend = Backend::Sequential;
  config.batch_contracts = true;
  const auto reference = run_portfolio_batch(portfolio, yelt, config);

  config.backend = Backend::DeviceSim;
  for (const int block_dim : {32, 128, 512}) {
    config.device_block_dim = block_dim;
    const auto device = run_portfolio_batch(portfolio, yelt, config);
    expect_identical(reference, device,
                     "device block dim " + std::to_string(block_dim));
  }
}

TEST(PortfolioBatch, DegenerateSingleContractBatch) {
  const auto portfolio = book(/*contracts=*/1, /*layers=*/2);
  const auto yelt = lens(1'000);

  for (const Backend backend : backends_with_simd()) {
    EngineConfig config;
    config.backend = backend;
    config.batch_contracts = false;
    const auto per_contract = run_aggregate_analysis(portfolio, yelt, config);
    const auto batched = run_portfolio_batch(portfolio, yelt, config);
    expect_identical(per_contract, batched,
                     std::string("1-contract/") + to_string(backend));
  }
}

TEST(PortfolioBatch, DisjointEltEventSets) {
  // Contracts whose ELTs partition the catalogue: no event is shared, and
  // one contract's ELT misses the YELT entirely (zero hits end to end).
  const EventId catalog = 600;
  std::vector<data::EltRow> lo_rows, hi_rows, outside_rows;
  for (EventId e = 0; e < 200; ++e) {
    lo_rows.push_back({e, 1e6 + e, 2e5, 4e6});
  }
  for (EventId e = 300; e < 500; ++e) {
    hi_rows.push_back({e, 2e6 + e, 3e5, 8e6});
  }
  for (EventId e = catalog + 50; e < catalog + 80; ++e) {
    outside_rows.push_back({e, 5e6, 1e6, 9e6});  // never occurs in the YELT
  }

  finance::Layer layer;
  layer.id = 1;
  layer.terms = finance::LayerTerms::typical();
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(1, data::EventLossTable::from_rows(lo_rows), {layer}));
  portfolio.add(finance::Contract(2, data::EventLossTable::from_rows(hi_rows), {layer}));
  portfolio.add(
      finance::Contract(3, data::EventLossTable::from_rows(outside_rows), {layer}));

  const auto yelt = lens(1'200, catalog);

  for (const bool secondary : {false, true}) {
    EngineConfig config;
    config.backend = Backend::Threaded;
    config.secondary_uncertainty = secondary;
    config.batch_contracts = false;
    const auto per_contract = run_aggregate_analysis(portfolio, yelt, config);
    const auto batched = run_portfolio_batch(portfolio, yelt, config);
    expect_identical(per_contract, batched,
                     secondary ? "disjoint/secondary" : "disjoint/means");
    // The out-of-catalogue contract contributes nothing on either path.
    for (TrialId t = 0; t < yelt.trials(); ++t) {
      ASSERT_EQ(batched.contract_ylts[2][t], 0.0);
    }
  }
}

TEST(PortfolioBatch, RejectionHeavySecondaryBitIdenticalAcrossBackends) {
  // A book whose ELT rows have CV >= 2 pushes both beta shape parameters
  // below 1: the batched sampler's first-attempt fast path rejects often,
  // so this matrix runs the scalar rejection-tail fallback hard. Degenerate
  // and pinned rows ride along to mix zero-draw lanes into the same
  // batches. Hit counts around the vector width keep lane tails in play.
  const EventId catalog = 90;
  std::vector<data::EltRow> heavy_rows;
  for (EventId e = 0; e < catalog; ++e) {
    const Money exposure = 4e6;
    if (e % 11 == 0) {
      heavy_rows.push_back({e, 0.0, 1e5, exposure});  // degenerate: zero mean
    } else if (e % 11 == 1) {
      heavy_rows.push_back({e, exposure, 1e5, exposure});  // pinned at limit
    } else {
      // mean_ratio 0.025–0.1 with sigma = 2–2.5x mean: alpha < 1 rows.
      const Money mean = 1e5 + 3e4 * static_cast<Money>(e % 10);
      heavy_rows.push_back({e, mean, 2.2 * mean, exposure});
    }
  }
  finance::Layer layer;
  layer.id = 1;
  layer.terms = finance::LayerTerms::typical();
  layer.terms.occ_retention = 5e4;
  layer.terms.occ_limit = 3e6;
  finance::Portfolio portfolio;
  portfolio.add(
      finance::Contract(1, data::EventLossTable::from_rows(heavy_rows), {layer}));
  portfolio.add(finance::Contract(
      2,
      data::EventLossTable::from_rows(
          std::vector<data::EltRow>(heavy_rows.begin(), heavy_rows.begin() + 45)),
      {layer}));

  const auto yelt = lens(700, catalog, /*seed=*/19);

  EngineConfig config;
  config.secondary_uncertainty = true;
  config.backend = Backend::Sequential;
  config.batch_contracts = false;
  const auto reference = run_aggregate_analysis(portfolio, yelt, config);

  for (const Backend backend : backends_with_simd()) {
    config.backend = backend;
    for (const bool batched : {false, true}) {
      config.batch_contracts = batched;
      const auto result = run_aggregate_analysis(portfolio, yelt, config);
      expect_identical(reference, result,
                       std::string("rejection-heavy/") + to_string(backend) +
                           (batched ? "/batched" : "/per-contract"));
    }
  }
}

TEST(PortfolioBatch, TrialBaseAndLeanOutputsMatch) {
  const auto portfolio = book(/*contracts=*/3, /*layers=*/2);
  const auto yelt = lens(700);

  EngineConfig config;
  config.backend = Backend::Threaded;
  config.trial_base = 12'345;  // MapReduce split regime
  config.compute_oep = false;
  config.keep_contract_ylts = false;

  config.batch_contracts = false;
  const auto per_contract = run_aggregate_analysis(portfolio, yelt, config);
  const auto batched = run_portfolio_batch(portfolio, yelt, config);

  ASSERT_TRUE(batched.contract_ylts.empty());
  ASSERT_EQ(batched.portfolio_occurrence_ylt.trials(), 0);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(per_contract.portfolio_ylt[t], batched.portfolio_ylt[t]) << t;
    ASSERT_EQ(per_contract.reinstatement_premium[t], batched.reinstatement_premium[t])
        << t;
  }
}

TEST(PortfolioBatchRunner, GroupsBooksByYeltAndMatchesIndividualRuns) {
  const auto book_a = book(/*contracts=*/3, /*layers=*/2, /*seed=*/11);
  const auto book_b = book(/*contracts=*/5, /*layers=*/1, /*seed=*/22);
  const auto shared_lens = lens(900);
  const auto other_lens = lens(900, 800, /*seed=*/31);

  EngineConfig config;
  config.backend = Backend::Threaded;

  PortfolioBatchRunner runner(config);
  EXPECT_EQ(runner.add(book_a, shared_lens), 0u);
  EXPECT_EQ(runner.add(book_b, shared_lens), 1u);
  EXPECT_EQ(runner.add(book_a, other_lens), 2u);
  EXPECT_EQ(runner.analyses(), 3u);
  EXPECT_EQ(runner.group_count(), 2u);  // two distinct YELTs, three books

  const auto results = runner.run();
  ASSERT_EQ(results.size(), 3u);

  config.batch_contracts = false;
  expect_identical(run_aggregate_analysis(book_a, shared_lens, config), results[0],
                   "book A over shared lens");
  expect_identical(run_aggregate_analysis(book_b, shared_lens, config), results[1],
                   "book B over shared lens");
  expect_identical(run_aggregate_analysis(book_a, other_lens, config), results[2],
                   "book A over other lens");
}

TEST(PortfolioBatchRunner, SharedResolverCacheIsReused) {
  const auto portfolio = book(/*contracts=*/4, /*layers=*/2);
  const auto yelt = lens(600);
  data::ResolverCache cache;

  EngineConfig config;
  config.backend = Backend::Threaded;
  config.resolver_cache = &cache;

  const auto first = run_portfolio_batch(portfolio, yelt, config);
  EXPECT_EQ(cache.miss_count(), portfolio.size());
  EXPECT_EQ(cache.hit_count(), 0u);

  const auto second = run_portfolio_batch(portfolio, yelt, config);
  EXPECT_EQ(cache.miss_count(), portfolio.size());
  EXPECT_EQ(cache.hit_count(), portfolio.size());
  expect_identical(first, second, "second batched run from cache");
}

}  // namespace
}  // namespace riskan::core

namespace riskan::data {
namespace {

TEST(CompactResolvedYelt, MatchesFullResolutionHitForHit) {
  YeltGenConfig yg;
  yg.trials = 400;
  const auto yelt = generate_yelt(300, yg);
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 300;
  pg.elt_rows = 80;
  const auto portfolio = finance::generate_portfolio(pg);
  const auto& elt = portfolio.contract(0).elt();

  const auto resolved = ResolvedYelt::build(elt, yelt);
  const auto compact = CompactResolvedYelt::build(resolved, yelt);

  ASSERT_EQ(compact.trials(), yelt.trials());
  EXPECT_EQ(compact.hits(), resolved.hits());

  // Walk the full resolution trial by trial; the compact columns must list
  // exactly the hits, in occurrence order.
  const auto offsets = yelt.offsets();
  const auto rows = resolved.rows();
  std::uint64_t k = 0;
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(compact.trial_offsets()[t], k) << "trial " << t;
    for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      if (rows[i] == ResolvedYelt::kNoLoss) {
        continue;
      }
      ASSERT_LT(k, compact.hits());
      EXPECT_EQ(compact.seqs()[k], static_cast<std::uint32_t>(i - offsets[t]));
      EXPECT_EQ(compact.rows()[k], rows[i]);
      ++k;
    }
  }
  EXPECT_EQ(k, compact.hits());
  EXPECT_EQ(compact.trial_offsets()[yelt.trials()], k);
}

TEST(CompactResolvedYelt, ParallelBuildMatchesInlineBuild) {
  YeltGenConfig yg;
  yg.trials = 2'000;
  const auto yelt = generate_yelt(500, yg);
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 500;
  pg.elt_rows = 120;
  const auto portfolio = finance::generate_portfolio(pg);
  const auto resolved = ResolvedYelt::build(portfolio.contract(0).elt(), yelt);

  const auto tiny_grain =
      CompactResolvedYelt::build(resolved, yelt, ParallelConfig{nullptr, 16});
  const auto inline_build = CompactResolvedYelt::build(
      resolved, yelt, ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()});

  ASSERT_EQ(tiny_grain.hits(), inline_build.hits());
  for (std::uint64_t k = 0; k < tiny_grain.hits(); ++k) {
    ASSERT_EQ(tiny_grain.seqs()[k], inline_build.seqs()[k]);
    ASSERT_EQ(tiny_grain.rows()[k], inline_build.rows()[k]);
  }
  for (TrialId t = 0; t <= yelt.trials(); ++t) {
    ASSERT_EQ(tiny_grain.trial_offsets()[t], inline_build.trial_offsets()[t]);
  }
}

TEST(MultiResolution, OneEntryPerContractThroughTheCache) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 3;
  pg.catalog_events = 300;
  pg.elt_rows = 60;
  const auto portfolio = finance::generate_portfolio(pg);
  YeltGenConfig yg;
  yg.trials = 500;
  const auto yelt = generate_yelt(300, yg);

  ResolverCache cache;
  std::vector<const EventLossTable*> elts;
  for (const auto& contract : portfolio.contracts()) {
    elts.push_back(&contract.elt());
  }
  const auto set = MultiResolution::build(elts, yelt, &cache);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(cache.miss_count(), 3u);
  for (std::size_t c = 0; c < set.size(); ++c) {
    EXPECT_EQ(set.entry(c).compact->hits(), set.entry(c).resolved->hits());
  }

  // A second set over the same tables shares the cached full resolutions.
  const auto again = MultiResolution::build(elts, yelt, &cache);
  EXPECT_EQ(cache.miss_count(), 3u);
  EXPECT_EQ(cache.hit_count(), 3u);
  for (std::size_t c = 0; c < set.size(); ++c) {
    EXPECT_EQ(again.entry(c).resolved.get(), set.entry(c).resolved.get());
  }
}

}  // namespace
}  // namespace riskan::data
