// Boundary conditions across modules: degenerate sizes, extreme
// parameters, and the single-element paths that general-case tests skip.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/yellt.hpp"
#include "dfa/copula.hpp"
#include "finance/premium.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

TEST(EdgeCases, EngineWithEmptyEltContractYieldsZeros) {
  // A contract whose ELT shares nothing with the catalogue: legal, all
  // zero losses.
  auto elt = data::EventLossTable::from_rows({{9'999, 10.0, 1.0, 50.0}});
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_limit = 100.0;
  layer.terms.agg_limit = 100.0;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt), {layer}));

  data::YeltGenConfig yg;
  yg.trials = 100;
  const auto yelt = data::generate_yelt(100, yg);  // events 0..99 only

  const auto result = core::run_aggregate_analysis(portfolio, yelt, {});
  EXPECT_DOUBLE_EQ(result.portfolio_ylt.total(), 0.0);
  EXPECT_DOUBLE_EQ(result.portfolio_occurrence_ylt.total(), 0.0);
  EXPECT_EQ(result.elt_lookups, 0u);
}

TEST(EdgeCases, EngineWithAllEmptyTrials) {
  auto elt = data::EventLossTable::from_rows({{1, 10.0, 1.0, 50.0}});
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_limit = 100.0;
  layer.terms.agg_limit = 100.0;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt), {layer}));

  data::YearEventLossTable::Builder builder;
  for (int t = 0; t < 10; ++t) {
    builder.begin_trial();  // no occurrences anywhere
  }
  const auto yelt = builder.finish();
  EXPECT_EQ(yelt.entries(), 0u);

  for (const auto backend : core::kAllBackends) {
    core::EngineConfig config;
    config.backend = backend;
    const auto result = core::run_aggregate_analysis(portfolio, yelt, config);
    EXPECT_DOUBLE_EQ(result.portfolio_ylt.total(), 0.0) << to_string(backend);
  }
}

TEST(EdgeCases, SingleTrialSingleEventEngineRun) {
  auto elt = data::EventLossTable::from_rows({{0, 100.0, 0.0, 100.0}});
  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = 30.0;
  layer.terms.occ_limit = 100.0;
  layer.terms.agg_limit = 100.0;
  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, std::move(elt), {layer}));

  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(0, 0);
  const auto yelt = builder.finish();

  core::EngineConfig config;
  config.secondary_uncertainty = false;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);
  ASSERT_EQ(result.portfolio_ylt.trials(), 1u);
  EXPECT_DOUBLE_EQ(result.portfolio_ylt[0], 70.0);
  EXPECT_DOUBLE_EQ(result.portfolio_occurrence_ylt[0], 70.0);

  // Metrics on a single-trial YLT degenerate gracefully.
  const auto summary = core::summarise(result.portfolio_ylt);
  EXPECT_DOUBLE_EQ(summary.var_99, 70.0);
  EXPECT_DOUBLE_EQ(summary.tvar_99, 70.0);
  EXPECT_DOUBLE_EQ(summary.max_loss, 70.0);
}

TEST(EdgeCases, ZeroShareIsRejectedButTinyShareWorks) {
  finance::LayerTerms terms;
  terms.occ_limit = 10.0;
  terms.agg_limit = 10.0;
  terms.share = 0.0;
  EXPECT_THROW(terms.validate(), ContractViolation);
  terms.share = 1e-9;
  EXPECT_NO_THROW(terms.validate());
}

TEST(EdgeCases, YelltStreamWithOneLocationIsLossless) {
  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(0, 1);
  const auto yelt = builder.finish();
  std::vector<data::EventLossTable> elts;
  elts.push_back(data::EventLossTable::from_rows({{0, 123.0, 0.0, 200.0}}));

  const data::YelltStream stream(yelt, elts, /*locations=*/1);
  const auto records = stream.materialise();
  ASSERT_EQ(records.size(), 1u);
  // One location: the full event loss, no disaggregation error at all.
  EXPECT_DOUBLE_EQ(records[0].loss, 123.0);
}

TEST(EdgeCases, CopulaWithOneDimensionIsPlainUniform) {
  const dfa::GaussianCopula copula(dfa::CorrelationMatrix(1), 5);
  std::vector<double> u(1);
  OnlineStats stats;
  for (TrialId t = 0; t < 20'000; ++t) {
    copula.sample(t, u);
    stats.add(u[0]);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(EdgeCases, NearPerfectCorrelationStillFactorises) {
  const auto matrix = dfa::CorrelationMatrix::exchangeable(3, 0.999);
  EXPECT_NO_THROW(dfa::GaussianCopula(matrix, 1));
}

TEST(EdgeCases, PoissonBoundaryAtAlgorithmSwitch) {
  // The sampler switches algorithms at mean 16; both sides must honour the
  // mean tightly.
  for (const double mean : {15.99, 16.01}) {
    Xoshiro256ss rng(31);
    OnlineStats stats;
    for (int i = 0; i < 100'000; ++i) {
      stats.add(static_cast<double>(sample_poisson(rng, mean)));
    }
    EXPECT_NEAR(stats.mean(), mean, 0.1) << mean;
  }
}

TEST(EdgeCases, QuantileAtExtremeLevels) {
  std::vector<double> values{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 3.0);
  EXPECT_NEAR(quantile(values, 1e-12), 1.0, 1e-9);  // interpolation epsilon
  EXPECT_NEAR(quantile(values, 1.0 - 1e-12), 3.0, 1e-9);
}

TEST(EdgeCases, PremiumWithZeroLoadsEqualsGrossedExpectedLoss) {
  finance::LossStatistics stats;
  stats.expected_loss = 100.0;
  stats.loss_stdev = 40.0;
  stats.tvar_99 = 300.0;
  finance::PricingTerms terms;
  terms.volatility_load = 0.0;
  terms.capital_load = 0.0;
  terms.expense_ratio = 0.0;
  terms.target_margin = 0.0;
  EXPECT_DOUBLE_EQ(finance::technical_premium(stats, terms), 100.0);
}

TEST(EdgeCases, ExtremeSeverityParetoBoundsHold) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double x = sample_truncated_pareto(rng, 0.1, 1.0, 1e12);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 1e12);
  }
}

TEST(EdgeCases, HugeRetentionLayersPayNothingEverywhere) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  auto base = finance::generate_portfolio(pg);

  finance::Portfolio portfolio;
  for (const auto& contract : base.contracts()) {
    auto layers = contract.layers();
    for (auto& layer : layers) {
      layer.terms.occ_retention = 1e18;
    }
    portfolio.add(
        finance::Contract(contract.id(), contract.elt(), std::move(layers)));
  }
  data::YeltGenConfig yg;
  yg.trials = 200;
  const auto yelt = data::generate_yelt(100, yg);
  const auto result = core::run_aggregate_analysis(portfolio, yelt, {});
  EXPECT_DOUBLE_EQ(result.portfolio_ylt.total(), 0.0);
}

}  // namespace
}  // namespace riskan
