// Thread pool, parallel_for/reduce, SPSC queue, and the device simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/device.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/spsc_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "util/require.hpp"

namespace riskan {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(10'000);
  parallel_for(
      0, touched.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          touched[i].fetch_add(1);
        }
      },
      ParallelConfig{&pool, 64});
  for (const auto& t : touched) {
    ASSERT_EQ(t.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, InvertedRangeRejected) {
  EXPECT_THROW(parallel_for(5, 4, [](std::size_t, std::size_t) {}), ContractViolation);
}

TEST(ParallelFor, ChunksRespectGrain) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard lock(m);
        chunks.emplace_back(lo, hi);
      },
      ParallelConfig{&pool, 100});
  EXPECT_EQ(chunks.size(), 10u);
  for (const auto& [lo, hi] : chunks) {
    EXPECT_LE(hi - lo, 100u);
  }
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const double total = parallel_reduce<double>(
      1, 10'001, 0.0,
      [](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += static_cast<double>(i);
        }
        return s;
      },
      [](double a, double b) { return a + b; }, ParallelConfig{&pool, 128});
  EXPECT_DOUBLE_EQ(total, 10'000.0 * 10'001.0 / 2.0);
}

TEST(ParallelReduce, DeterministicForFixedGrain) {
  ThreadPool pool(4);
  auto run = [&pool] {
    return parallel_reduce<double>(
        0, 100'000, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += 1.0 / (1.0 + static_cast<double>(i));
          }
          return s;
        },
        [](double a, double b) { return a + b; }, ParallelConfig{&pool, 1024});
  };
  const double a = run();
  const double b = run();
  EXPECT_EQ(a, b);  // bitwise: chunk combination order is fixed
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(queue.try_push(i));
  }
  EXPECT_FALSE(queue.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    const auto v = queue.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(SpscQueue, CapacityRoundsToPowerOfTwo) {
  SpscQueue<int> queue(5);
  EXPECT_EQ(queue.capacity(), 8u);
  EXPECT_THROW(SpscQueue<int>(1), ContractViolation);
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  SpscQueue<int> queue(64);
  constexpr int kCount = 100'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (queue.try_push(i)) {
        ++i;
      }
    }
  });
  long long sum = 0;
  int received = 0;
  while (received < kCount) {
    if (auto v = queue.try_pop()) {
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount - 1) * kCount / 2);
}

// ---------------------------------------------------------------------------
// Device simulator
// ---------------------------------------------------------------------------

TEST(Device, LaunchRunsEveryThreadOfEveryBlock) {
  Device device;
  std::vector<std::atomic<int>> hits(32 * 8);
  device.launch(8, 32, [&](BlockContext& ctx, int tid) {
    hits[static_cast<std::size_t>(ctx.block_id()) * 32 + tid].fetch_add(1);
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(Device, SharedMemoryArenaAllocatesAndExhausts) {
  Device device;
  const auto stats = device.launch_blocks(1, 1, [&](BlockContext& ctx) {
    auto* a = ctx.shared_alloc<double>(100);
    a[99] = 1.0;
    EXPECT_GE(ctx.shared_used(), 100 * sizeof(double));
    EXPECT_THROW((void)ctx.shared_alloc<double>(1 << 20), ContractViolation);
  });
  EXPECT_EQ(stats.grid_dim, 1);
}

TEST(Device, ConstantMemoryUploadAndOverflow) {
  Device device;
  std::vector<double> table(100, 3.5);
  const auto offset = device.const_upload(table.data(), table.size() * sizeof(double));
  const auto* data = reinterpret_cast<const double*>(device.const_data(offset));
  EXPECT_DOUBLE_EQ(data[50], 3.5);

  std::vector<std::byte> huge(device.const_capacity() + 1);
  EXPECT_THROW((void)device.const_upload(huge.data(), huge.size()), ContractViolation);

  device.const_clear();
  EXPECT_EQ(device.const_used(), 0u);
}

TEST(Device, CountersAggregateAcrossBlocks) {
  Device device;
  const auto stats = device.launch_blocks(4, 16, [](BlockContext& ctx) {
    ctx.meter_global_read(100);
    ctx.meter_flops(50);
  });
  EXPECT_EQ(stats.counters.global_read_bytes, 400u);
  EXPECT_EQ(stats.counters.flops, 200u);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST(Device, ModelIsMonotoneInTraffic) {
  Device device;
  DeviceCounters light;
  light.global_read_bytes = 1'000'000;
  DeviceCounters heavy = light;
  heavy.global_read_bytes = 1'000'000'000;
  EXPECT_LT(device.model_seconds(light, 14, 128), device.model_seconds(heavy, 14, 128));
}

TEST(Device, ModelPenalisesPartialWaves) {
  Device device;  // 14 SMs by default
  DeviceCounters counters;
  counters.flops = 1'000'000'000;
  // 15 blocks on 14 SMs = 2 waves, second nearly idle.
  const double quantised = device.model_seconds(counters, 15, 128);
  const double full = device.model_seconds(counters, 14, 128);
  EXPECT_GT(quantised, full);
}

TEST(Device, ModelPenalisesNarrowBlocks) {
  Device device;
  DeviceCounters counters;
  counters.flops = 1'000'000'000;
  // 8-thread blocks waste 24 of 32 warp lanes.
  EXPECT_GT(device.model_seconds(counters, 14, 8), device.model_seconds(counters, 14, 32));
}

TEST(Device, PeakFlopsMatchesSpec) {
  DeviceSpec spec;
  spec.sm_count = 2;
  spec.cores_per_sm = 10;
  spec.core_ghz = 1.0;
  spec.flops_per_core_per_cycle = 2.0;
  EXPECT_DOUBLE_EQ(spec.peak_flops(), 40e9);
}

TEST(Device, RejectsBadLaunch) {
  Device device;
  EXPECT_THROW(device.launch(0, 32, [](BlockContext&, int) {}), ContractViolation);
  EXPECT_THROW(device.launch(1, 0, [](BlockContext&, int) {}), ContractViolation);
}

}  // namespace
}  // namespace riskan
