// The distributed-file-space substrate: DFS block store, MapReduce runtime,
// and the aggregate-analysis job's bit-exact equivalence with the
// in-memory engine.
#include <gtest/gtest.h>

#include <string>

#include "core/aggregate_engine.hpp"
#include "mapreduce/aggregate_job.hpp"
#include "mapreduce/dfs.hpp"
#include "mapreduce/framework.hpp"
#include "util/require.hpp"

namespace riskan::mapreduce {
namespace {

DfsConfig test_dfs_config(const char* name) {
  DfsConfig config;
  config.root_dir = std::string("/tmp/riskan-dfs-test-") + name;
  config.block_size = 256;
  return config;
}

std::vector<std::byte> make_bytes(std::size_t n, int fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

TEST(Dfs, SplitsFilesIntoBlocks) {
  Dfs dfs(test_dfs_config("split"));
  const auto data = make_bytes(1000, 7);
  dfs.write("file", data);
  EXPECT_TRUE(dfs.exists("file"));
  EXPECT_EQ(dfs.block_count("file"), 4u);  // 256*3 + 232
  EXPECT_EQ(dfs.read_block("file", 0).size(), 256u);
  EXPECT_EQ(dfs.read_block("file", 3).size(), 232u);
  const auto back = dfs.read_all("file");
  EXPECT_EQ(back, data);
  EXPECT_EQ(dfs.logical_bytes(), 1000u);
}

TEST(Dfs, EmptyFileHasOneBlock) {
  Dfs dfs(test_dfs_config("empty"));
  dfs.write("empty", {});
  EXPECT_EQ(dfs.block_count("empty"), 1u);
  EXPECT_EQ(dfs.read_all("empty").size(), 0u);
}

TEST(Dfs, ReplicationMultipliesPhysicalBytes) {
  auto config = test_dfs_config("repl");
  config.replication = 3;
  Dfs dfs(config);
  dfs.write("file", make_bytes(100, 1));
  EXPECT_EQ(dfs.logical_bytes(), 100u);
  EXPECT_EQ(dfs.physical_bytes(), 300u);
}

TEST(Dfs, OverwriteAndRemove) {
  Dfs dfs(test_dfs_config("rm"));
  dfs.write("f", make_bytes(100, 1));
  dfs.write("f", make_bytes(50, 2));  // overwrite
  EXPECT_EQ(dfs.logical_bytes(), 50u);
  EXPECT_EQ(static_cast<int>(dfs.read_all("f")[0]), 2);
  dfs.remove("f");
  EXPECT_FALSE(dfs.exists("f"));
  EXPECT_EQ(dfs.logical_bytes(), 0u);
  EXPECT_THROW((void)dfs.block_count("f"), ContractViolation);
  dfs.remove("never-existed");  // idempotent
}

TEST(Dfs, ChunkedWritePreservesChunkBoundaries) {
  Dfs dfs(test_dfs_config("chunked"));
  dfs.write_chunked("f", {make_bytes(10, 1), make_bytes(2000, 2), make_bytes(1, 3)});
  EXPECT_EQ(dfs.block_count("f"), 3u);
  EXPECT_EQ(dfs.read_block("f", 0).size(), 10u);
  EXPECT_EQ(dfs.read_block("f", 1).size(), 2000u);  // a chunk may exceed block_size
  EXPECT_EQ(dfs.read_block("f", 2).size(), 1u);
}

TEST(Dfs, ConfigContracts) {
  DfsConfig bad = test_dfs_config("bad");
  bad.block_size = 0;
  EXPECT_THROW(Dfs{bad}, ContractViolation);
  bad = test_dfs_config("bad2");
  bad.replication = 0;
  EXPECT_THROW(Dfs{bad}, ContractViolation);
}

// ---------------------------------------------------------------------------
// MapReduce runtime
// ---------------------------------------------------------------------------

TEST(MapReduce, SumsPerKeyAcrossSplits) {
  // 10 splits each emitting (split % 3, split): classic keyed sum.
  MapReduceStats stats;
  const auto result = run_mapreduce<int, double>(
      10,
      [](std::size_t split, const std::function<void(const int&, const double&)>& emit) {
        emit(static_cast<int>(split % 3), static_cast<double>(split));
      },
      [](const double& a, const double& b) { return a + b; }, {}, &stats);

  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result.at(0), 0.0 + 3 + 6 + 9);
  EXPECT_DOUBLE_EQ(result.at(1), 1.0 + 4 + 7);
  EXPECT_DOUBLE_EQ(result.at(2), 2.0 + 5 + 8);
  EXPECT_EQ(stats.map_emissions, 10u);
  EXPECT_EQ(stats.reduce_groups, 3u);
}

TEST(MapReduce, CombinerReducesShuffleVolume) {
  auto mapper = [](std::size_t /*split*/,
                   const std::function<void(const int&, const double&)>& emit) {
    for (int i = 0; i < 100; ++i) {
      emit(i % 5, 1.0);  // heavy key repetition inside one task
    }
  };
  auto add = [](const double& a, const double& b) { return a + b; };

  MapReduceConfig with;
  with.enable_combiner = true;
  MapReduceStats stats_with;
  const auto a = run_mapreduce<int, double>(4, mapper, add, with, &stats_with);

  MapReduceConfig without;
  without.enable_combiner = false;
  MapReduceStats stats_without;
  const auto b = run_mapreduce<int, double>(4, mapper, add, without, &stats_without);

  // Same answer either way...
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, value] : a) {
    EXPECT_DOUBLE_EQ(value, b.at(key));
    EXPECT_DOUBLE_EQ(value, 80.0);  // 4 splits x 20 per key
  }
  // ...but the combiner collapses 400 emissions into 20 shuffle pairs.
  EXPECT_EQ(stats_with.shuffle_pairs, 20u);
  EXPECT_EQ(stats_without.shuffle_pairs, 400u);
  EXPECT_LT(stats_with.shuffle_bytes, stats_without.shuffle_bytes);
}

TEST(MapReduce, ManyReducersSameAnswer) {
  auto mapper = [](std::size_t split,
                   const std::function<void(const int&, const double&)>& emit) {
    emit(static_cast<int>(split), 2.0);
  };
  auto add = [](const double& a, const double& b) { return a + b; };
  MapReduceConfig one;
  one.reducers = 1;
  MapReduceConfig many;
  many.reducers = 16;
  const auto a = run_mapreduce<int, double>(50, mapper, add, one);
  const auto b = run_mapreduce<int, double>(50, mapper, add, many);
  EXPECT_EQ(a, b);
}

TEST(MapReduce, ContractsEnforced) {
  auto mapper = [](std::size_t, const std::function<void(const int&, const double&)>&) {};
  auto add = [](const double& a, const double& b) { return a + b; };
  EXPECT_THROW((run_mapreduce<int, double>(0, mapper, add)), ContractViolation);
  MapReduceConfig bad;
  bad.reducers = 0;
  EXPECT_THROW((run_mapreduce<int, double>(1, mapper, add, bad)), ContractViolation);
}

// ---------------------------------------------------------------------------
// Aggregate-analysis job
// ---------------------------------------------------------------------------

class AggregateJobFixture : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    finance::PortfolioGenConfig pg;
    pg.contracts = 5;
    pg.catalog_events = 200;
    pg.elt_rows = 60;
    portfolio_ = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = 900;
    yelt_ = data::generate_yelt(200, yg);
  }

  finance::Portfolio portfolio_;
  data::YearEventLossTable yelt_;
};

TEST_P(AggregateJobFixture, MatchesInMemoryEngineBitExactly) {
  const bool secondary = GetParam();

  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.secondary_uncertainty = secondary;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  const auto reference = core::run_aggregate_analysis(portfolio_, yelt_, engine);

  Dfs dfs(test_dfs_config(secondary ? "job-sec" : "job-mean"));
  AggregateJobConfig job;
  job.trials_per_block = 128;  // uneven final block
  job.secondary_uncertainty = secondary;
  const auto result = run_aggregate_job(dfs, portfolio_, yelt_, job);

  ASSERT_EQ(result.portfolio_ylt.trials(), yelt_.trials());
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(result.portfolio_ylt[t], reference.portfolio_ylt[t]) << "trial " << t;
  }
  EXPECT_EQ(result.blocks, (yelt_.trials() + 127) / 128);
  EXPECT_GT(result.dfs_bytes, 0u);
  EXPECT_EQ(result.mr_stats.reduce_groups, yelt_.trials());
}

INSTANTIATE_TEST_SUITE_P(SecondaryOnOff, AggregateJobFixture, ::testing::Bool());

TEST_F(AggregateJobFixture, BlockSizeDoesNotChangeResults) {
  Dfs dfs_small(test_dfs_config("blk-small"));
  Dfs dfs_large(test_dfs_config("blk-large"));
  AggregateJobConfig small;
  small.trials_per_block = 64;
  AggregateJobConfig large;
  large.trials_per_block = 500;
  const auto a = run_aggregate_job(dfs_small, portfolio_, yelt_, small);
  const auto b = run_aggregate_job(dfs_large, portfolio_, yelt_, large);
  for (TrialId t = 0; t < yelt_.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]);
  }
}

TEST_F(AggregateJobFixture, StageInIsIdempotent) {
  Dfs dfs(test_dfs_config("stage"));
  AggregateJobConfig job;
  job.trials_per_block = 100;
  const auto blocks = stage_yelt(dfs, yelt_, job);
  EXPECT_EQ(blocks, dfs.block_count(job.dfs_file));
  // Second run reuses the staged file (no duplicate bytes).
  const auto before = dfs.logical_bytes();
  const auto result = run_aggregate_job(dfs, portfolio_, yelt_, job);
  EXPECT_EQ(dfs.logical_bytes(), before);
  EXPECT_EQ(result.blocks, blocks);
}

}  // namespace
}  // namespace riskan::mapreduce
