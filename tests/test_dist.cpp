// The distribution runtime's recovery matrix: real forked workers, real
// pipes, injected faults — and a hard bit-identity requirement. For every
// fault mode and worker count the final YLT must equal the single-process
// run exactly (EXPECT_EQ on doubles, no tolerance): blocks partition the
// trial space, each Task frame carries the block's global trial base, and
// the reduce is per-trial assignment, so retries, re-queues and straggler
// re-execution cannot change a single bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/simd.hpp"
#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "dist/coordinator.hpp"
#include "dist/frame.hpp"
#include "finance/contract.hpp"
#include "mapreduce/aggregate_job.hpp"
#include "mapreduce/dfs.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::dist {
namespace {

struct DistWorld {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
  std::vector<std::vector<std::byte>> encoded;
  std::vector<BlockSpec> specs;
  std::vector<Money> reference;  ///< single-process portfolio losses
};

constexpr TrialId kTrials = 640;
constexpr TrialId kPerBlock = 80;

const DistWorld& world() {
  static const DistWorld w = [] {
    DistWorld built;
    finance::PortfolioGenConfig pg;
    pg.contracts = 3;
    pg.catalog_events = 150;
    pg.elt_rows = 30;
    built.portfolio = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = kTrials;
    built.yelt = data::generate_yelt(150, yg);

    for (TrialId lo = 0; lo < kTrials; lo += kPerBlock) {
      const TrialId hi = std::min<TrialId>(kTrials, lo + kPerBlock);
      ByteWriter writer;
      data::encode_yelt_slice(built.yelt, lo, hi, writer);
      built.specs.push_back({built.encoded.size(), lo, hi - lo});
      built.encoded.push_back(writer.buffer());
    }

    core::EngineConfig engine;
    engine.backend = core::Backend::Sequential;
    engine.compute_oep = false;
    engine.keep_contract_ylts = false;
    const auto result =
        core::run_aggregate_analysis(built.portfolio, built.yelt, engine);
    const auto losses = result.portfolio_ylt.losses();
    built.reference.assign(losses.begin(), losses.end());
    return built;
  }();
  return w;
}

BlockFetcher fetcher() {
  return [](const BlockSpec& spec) { return world().encoded[spec.id]; };
}

void expect_bit_identical(const data::YearLossTable& ylt) {
  const auto& expected = world().reference;
  ASSERT_EQ(ylt.trials(), expected.size());
  for (TrialId t = 0; t < ylt.trials(); ++t) {
    ASSERT_EQ(ylt[t], expected[t]) << "trial " << t;
  }
}

DistResult run(const DistConfig& config) {
  core::EngineConfig engine;  // normalised by the runtime itself
  return run_distributed_aggregate(world().portfolio, engine, world().specs,
                                   fetcher(), config);
}

// ---------------------------------------------------------------------------
// The fault × worker-count recovery matrix
// ---------------------------------------------------------------------------

class DistRecovery : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Workers, DistRecovery,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}, std::size_t{8}));

TEST_P(DistRecovery, NoFaultBitIdentical) {
  DistConfig config;
  config.workers = GetParam();
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_EQ(result.stats.blocks_total, world().specs.size());
  EXPECT_EQ(result.stats.blocks_assigned, world().specs.size());
  EXPECT_EQ(result.stats.blocks_retried, 0u);
  EXPECT_EQ(result.stats.worker_deaths, 0u);
  EXPECT_FALSE(result.stats.fell_back_in_process);
  EXPECT_EQ(result.stats.workers_spawned, config.workers);
}

TEST_P(DistRecovery, WorkerCrashBitIdentical) {
  DistConfig config;
  config.workers = GetParam();
  config.faults.crash = {0, 1};  // worker 0 dies mid-first-task
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_GE(result.stats.worker_deaths, 1u);
  EXPECT_GE(result.stats.blocks_retried, 1u);
  EXPECT_GE(result.stats.workers_respawned, 1u);
  EXPECT_GE(result.stats.bytes_resent, 1u);
  EXPECT_FALSE(result.stats.fell_back_in_process);
}

TEST_P(DistRecovery, CorruptReplyBitIdentical) {
  DistConfig config;
  config.workers = GetParam();
  config.faults.corrupt = {0, 1};  // worker 0's first reply is bit-flipped
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_GE(result.stats.corrupt_frames, 1u);
  EXPECT_GE(result.stats.blocks_retried, 1u);
  EXPECT_GE(result.stats.worker_deaths, 1u);  // a garbled stream is culled
}

TEST_P(DistRecovery, TornReplyBitIdentical) {
  DistConfig config;
  config.workers = GetParam();
  config.faults.torn = {0, 1};  // half a Result frame, then _exit
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_GE(result.stats.corrupt_frames, 1u);
  EXPECT_GE(result.stats.blocks_retried, 1u);
}

TEST_P(DistRecovery, StalledWorkerBitIdentical) {
  DistConfig config;
  config.workers = GetParam();
  config.lease_seconds = 0.25;
  config.faults.stall = {0, 1};
  config.faults.stall_seconds = 0.6;  // well past the lease
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_GE(result.stats.leases_expired, 1u);
  EXPECT_GE(result.stats.blocks_retried, 1u);
}

// ---------------------------------------------------------------------------
// Simd engine across the distribution runtime
// ---------------------------------------------------------------------------

// A caller running Backend::Simd gets the vector kernel inside every forked
// worker (the coordinator keeps Simd for workers — it is pool-free and
// bit-identical — and only demotes pool-backed backends to Sequential), and
// the fold must still reproduce the single-process Sequential reference
// exactly. 0 workers covers the in-process fallback path under Simd.
TEST(DistSimd, SimdEngineBitIdenticalAcrossWorkerCounts) {
  if (!core::exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  for (const std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    DistConfig config;
    config.workers = workers;
    core::EngineConfig engine;
    engine.backend = core::Backend::Simd;
    const auto result = run_distributed_aggregate(world().portfolio, engine,
                                                  world().specs, fetcher(), config);
    expect_bit_identical(result.portfolio_ylt);
    EXPECT_EQ(result.stats.blocks_total, world().specs.size());
  }
}

// ---------------------------------------------------------------------------
// Straggler semantics
// ---------------------------------------------------------------------------

// A straggler whose block was re-queued but not yet re-assigned (backoff)
// comes back first: its late result IS the first completion and is used.
// One block only — with more work pending, evicting the straggler to free
// its slot would be the right call instead.
TEST(DistStraggler, LateResultAcceptedWhenFirst) {
  DistConfig config;
  config.workers = 1;
  config.lease_seconds = 0.2;
  // Re-assignment would wait far longer than the stall, so the straggler's
  // own result must win.
  config.backoff_initial_seconds = 5.0;
  config.backoff_max_seconds = 10.0;
  config.max_respawns = 0;  // no speculative replacement either
  config.faults.stall = {0, 1};
  config.faults.stall_seconds = 0.45;
  const std::span<const BlockSpec> one_block(world().specs.data(), 1);
  core::EngineConfig engine;
  const auto result = run_distributed_aggregate(world().portfolio, engine,
                                                one_block, fetcher(), config);
  ASSERT_EQ(result.portfolio_ylt.trials(), kPerBlock);
  for (TrialId t = 0; t < kPerBlock; ++t) {
    ASSERT_EQ(result.portfolio_ylt[t], world().reference[t]) << "trial " << t;
  }
  EXPECT_GE(result.stats.leases_expired, 1u);
  EXPECT_GE(result.stats.blocks_retried, 1u);
  // The lease expired but the block was never re-sent, and the run never
  // degraded: the straggler itself delivered.
  EXPECT_EQ(result.stats.bytes_resent, 0u);
  EXPECT_EQ(result.stats.blocks_assigned, 1u);
  EXPECT_FALSE(result.stats.fell_back_in_process);
}

// ---------------------------------------------------------------------------
// Budgets and degradation
// ---------------------------------------------------------------------------

TEST(DistBudget, AttemptBudgetExhaustionThrowsDistError) {
  DistConfig config;
  config.workers = 2;
  config.max_attempts = 3;
  config.backoff_initial_seconds = 0.0;  // retry immediately
  config.faults.crash_every_task = true;
  EXPECT_THROW((void)run(config), DistError);
}

TEST(DistBudget, RespawnBudgetExhaustionFallsBackInProcess) {
  DistConfig config;
  config.workers = 1;
  config.max_attempts = 1000;
  config.max_respawns = 2;
  config.backoff_initial_seconds = 0.0;
  config.faults.crash_every_task = true;
  const auto result = run(config);
  // Every fork dies on its first task until the respawn budget is gone,
  // then the remaining blocks run in-process — and still bit-identically.
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_TRUE(result.stats.fell_back_in_process);
  EXPECT_EQ(result.stats.workers_respawned, 2u);
  EXPECT_EQ(result.stats.blocks_run_in_process, world().specs.size());
}

TEST(DistFallback, SpawnFailureDegradesToInProcess) {
  DistConfig config;
  config.workers = 4;
  config.faults.fail_spawn = true;
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_TRUE(result.stats.fell_back_in_process);
  EXPECT_EQ(result.stats.workers_spawned, 0u);
  EXPECT_EQ(result.stats.blocks_run_in_process, world().specs.size());
}

TEST(DistFallback, ZeroWorkersRunsInProcess) {
  DistConfig config;
  config.workers = 0;
  const auto result = run(config);
  expect_bit_identical(result.portfolio_ylt);
  EXPECT_TRUE(result.stats.fell_back_in_process);
}

// ---------------------------------------------------------------------------
// Contract checks
// ---------------------------------------------------------------------------

TEST(DistContracts, OverlappingBlocksRejected) {
  std::vector<BlockSpec> overlapping = {{0, 0, 100}, {1, 50, 100}};
  core::EngineConfig engine;
  EXPECT_THROW((void)run_distributed_aggregate(
                   world().portfolio, engine, overlapping, fetcher(), {}),
               ContractViolation);
}

TEST(DistContracts, DuplicateBlockIdsRejected) {
  std::vector<BlockSpec> duplicated = {{7, 0, 100}, {7, 100, 100}};
  core::EngineConfig engine;
  EXPECT_THROW((void)run_distributed_aggregate(
                   world().portfolio, engine, duplicated, fetcher(), {}),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(DistFrame, RoundTripAndCorruptionDetected) {
  Frame frame;
  frame.type = FrameType::Result;
  frame.block_id = 42;
  for (int i = 0; i < 100; ++i) {
    frame.payload.push_back(static_cast<std::byte>(i));
  }
  auto bytes = encode_frame(frame);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + frame.payload.size());
  // Flipping any payload byte must break the CRC; flipping the magic must
  // break the header. (Verified indirectly: the coordinator-side read path
  // is exercised by the fault matrix; here we check the encoded layout.)
  ByteReader reader(bytes);
  EXPECT_EQ(reader.u32(), kFrameMagic);
  EXPECT_EQ(reader.u32(), static_cast<std::uint32_t>(FrameType::Result));
  EXPECT_EQ(reader.u64(), 42u);
  EXPECT_EQ(reader.u64(), frame.payload.size());
  EXPECT_EQ(reader.u32(), crc32(frame.payload));
}

// ---------------------------------------------------------------------------
// End-to-end: the MapReduce job riding the dist transport
// ---------------------------------------------------------------------------

TEST(DistJob, MapReduceJobOnDistTransportBitIdenticalUnderCrash) {
  const auto& w = world();

  mapreduce::AggregateJobConfig in_process;
  in_process.trials_per_block = kPerBlock;
  mapreduce::DfsConfig dfs_config;
  dfs_config.root_dir = "/tmp/riskan-dfs-dist-inproc";
  mapreduce::Dfs dfs_a(dfs_config);
  const auto expected =
      mapreduce::run_aggregate_job(dfs_a, w.portfolio, w.yelt, in_process);

  mapreduce::AggregateJobConfig distributed = in_process;
  distributed.dist = DistConfig{};
  distributed.dist->workers = 2;
  distributed.dist->faults.crash = {1, 1};  // second worker dies on task 1
  dfs_config.root_dir = "/tmp/riskan-dfs-dist-workers";
  mapreduce::Dfs dfs_b(dfs_config);
  const auto actual =
      mapreduce::run_aggregate_job(dfs_b, w.portfolio, w.yelt, distributed);

  ASSERT_EQ(actual.portfolio_ylt.trials(), expected.portfolio_ylt.trials());
  for (TrialId t = 0; t < actual.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(actual.portfolio_ylt[t], expected.portfolio_ylt[t]) << "trial " << t;
  }
  // The recovery ledger surfaces through MapReduceStats (and is non-zero
  // under the injected fault).
  EXPECT_GE(actual.mr_stats.blocks_retried, 1u);
  EXPECT_GE(actual.mr_stats.bytes_resent, 1u);
  EXPECT_GE(actual.dist_stats.worker_deaths, 1u);
  EXPECT_EQ(expected.mr_stats.blocks_retried, 0u);
}

}  // namespace
}  // namespace riskan::dist
