// E10 — portfolio-batched execution ablation.
//
// After the E2b resolver hoisted per-occurrence lookups, the per-contract
// engine's remaining O(contracts) redundancy is the YELT walk itself: a
// C-contract book re-streams the trial structure C×layers times and pays
// as many fork/join barriers. The batched path (core::PortfolioBatchRunner)
// makes one streamed pass per trial chunk serving every contract's layer
// stack from hit-compacted resolutions.
//
// This bench sweeps book size on the full portfolio-roll-up workload
// (per-contract YLTs and OEP kept, the examples/portfolio_analysis
// configuration; secondary uncertainty off isolates the streaming path —
// with it on, beta sampling dominates both paths equally) and reports
// batched vs per-contract wall-clock. Results are verified bit-identical
// before timing is reported. Acceptance bar: batched <= 0.7x the
// per-contract loop on the >=16-contract shared-YELT book.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "data/resolved_yelt.hpp"
#include "obs/obs.hpp"

using namespace riskan;

namespace {

/// Best-of-N wall-clock for one engine configuration (first run warms the
/// resolver cache and the page cache; timing noise on shared CI hosts makes
/// single-shot numbers unusable).
template <typename Run>
double best_seconds(int reps, const Run& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::Timer watch("bench.rep");
    run();
    const double s = watch.stop();
    if (best < 0.0 || s < best) {
      best = s;
    }
  }
  return best;
}

}  // namespace

int main() {
  print_banner(std::cout, "E10: portfolio-batched vs per-contract stage 2");

  const TrialId trials = bench::scaled_trials(50'000);
  const int reps = bench::quick_mode() ? 2 : 3;
  const std::size_t book_sizes[] = {1, 4, 16, 64};

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.secondary_uncertainty = false;
  config.compute_oep = true;       // the full roll-up outputs
  config.keep_contract_ylts = true;

  ReportTable table({"contracts", "layers", "per-contract", "batched",
                     "batched/per-contract", "occurrences/s batched"});
  bench::JsonReport json;
  json.set("experiment", std::string("e10_portfolio_batch"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("secondary_uncertainty", std::string("off"));
  json.set("compute_oep", std::string("on"));

  double headline_ratio = 0.0;
  double device_modeled_ratio = 0.0;
  for (const std::size_t contracts : book_sizes) {
    auto w = bench::make_workload(contracts, /*elt_rows=*/1'000, trials,
                                  /*events_per_year=*/10.0, /*catalog_events=*/10'000,
                                  /*layers_per_contract=*/4);

    data::ResolverCache cache;
    config.resolver_cache = &cache;

    // Correctness gate first (also warms the resolver cache for both paths).
    config.batch_contracts = false;
    const auto reference = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    config.batch_contracts = true;
    const auto batched_result = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    for (TrialId t = 0; t < trials; ++t) {
      if (reference.portfolio_ylt[t] != batched_result.portfolio_ylt[t] ||
          reference.portfolio_occurrence_ylt[t] !=
              batched_result.portfolio_occurrence_ylt[t] ||
          reference.reinstatement_premium[t] != batched_result.reinstatement_premium[t]) {
        std::cerr << "BATCH MISMATCH at trial " << t
                  << " — outputs are not bit-identical\n";
        return 1;
      }
    }
    for (std::size_t c = 0; c < w.portfolio.size(); ++c) {
      for (TrialId t = 0; t < trials; ++t) {
        if (reference.contract_ylts[c][t] != batched_result.contract_ylts[c][t]) {
          std::cerr << "BATCH MISMATCH contract " << c << " trial " << t << "\n";
          return 1;
        }
      }
    }

    config.batch_contracts = false;
    const double per_contract_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });
    config.batch_contracts = true;
    const double batched_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });

    const double ratio = batched_s / per_contract_s;
    const double occ_per_s =
        static_cast<double>(batched_result.occurrences_processed) / batched_s;
    table.add_row({std::to_string(contracts),
                   std::to_string(w.portfolio.layer_count()),
                   format_seconds(per_contract_s), format_seconds(batched_s),
                   format_fixed(ratio, 2) + "x", format_rate(occ_per_s)});

    const std::string prefix = "contracts_" + std::to_string(contracts) + "_";
    json.set(prefix + "per_contract_seconds", per_contract_s);
    json.set(prefix + "batched_seconds", batched_s);
    json.set(prefix + "ratio", ratio);
    if (contracts == 16) {
      headline_ratio = ratio;

      // DeviceSim smoke on the headline book: the executor refactor runs
      // the batched plan natively in simulated device blocks (one launch
      // sequence for the whole book) instead of falling back to the
      // per-contract device path. The modeled device time is the scale-
      // free metric; the gate is batched-modeled <= loop-modeled.
      core::EngineConfig dev = config;
      dev.backend = core::Backend::DeviceSim;
      core::DeviceRunInfo loop_info;
      dev.batch_contracts = false;
      dev.device_info = &loop_info;
      (void)core::run_aggregate_analysis(w.portfolio, w.yelt, dev);
      core::DeviceRunInfo batched_info;
      dev.batch_contracts = true;
      dev.device_info = &batched_info;
      (void)core::run_aggregate_analysis(w.portfolio, w.yelt, dev);
      device_modeled_ratio = batched_info.modeled_seconds / loop_info.modeled_seconds;
      std::cout << "\nDeviceSim (16 contracts): per-contract "
                << loop_info.launches << " launches / "
                << format_seconds(loop_info.modeled_seconds) << " modeled, batched "
                << batched_info.launches << " launches / "
                << format_seconds(batched_info.modeled_seconds) << " modeled ("
                << format_fixed(device_modeled_ratio, 2) << "x)\n\n";
      json.set("device_loop_modeled_seconds", loop_info.modeled_seconds);
      json.set("device_batched_modeled_seconds", batched_info.modeled_seconds);
      json.set("device_loop_launches", static_cast<std::uint64_t>(loop_info.launches));
      json.set("device_batched_launches",
               static_cast<std::uint64_t>(batched_info.launches));
      json.set("device_batched_vs_loop_modeled_ratio", device_modeled_ratio);
    }
  }
  bench::emit("e10_portfolio_batch", table);

  std::cout << "\n[E10 verdict] batched/per-contract on the 16-contract book: "
            << format_fixed(headline_ratio, 2) << "x "
            << (headline_ratio <= 0.7 ? "(meets the <=0.7x bar)"
                                      : "(ABOVE the <=0.7x bar)")
            << "; DeviceSim batched/loop modeled "
            << format_fixed(device_modeled_ratio, 2) << "x "
            << (device_modeled_ratio <= 1.0 ? "(meets the <=1.0x bar)"
                                            : "(ABOVE the <=1.0x bar)")
            << "; all outputs bit-identical across paths\n";

  json.set("headline_ratio_16_contracts", headline_ratio);
  const std::string json_path = bench::artifact_path("BENCH_e10.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return headline_ratio <= 0.7 && device_modeled_ratio <= 1.0 ? 0 : 2;
}
