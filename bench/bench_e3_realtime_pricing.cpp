// E3 — real-time pricing.
//
// Paper claim: "A 1 million trial aggregate simulation on a typical
// contract only takes 25 seconds and can therefore support real-time
// pricing."
//
// We price one typical contract (single XL layer, 10k-row ELT, ~10
// occurrences per trial year) against a 1M-trial YELT and report the
// wall-clock, with and without secondary-uncertainty sampling, plus the
// trial-count scaling series that shows time is linear in trials (the
// property that makes the 25 s budget predictable).
#include <iostream>

#include "bench/common.hpp"
#include "core/pricer.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E3: real-time pricing (paper's '25 seconds for 1M trials')");

  const TrialId full_trials = bench::scaled_trials(1'000'000);

  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 100'000;
  pg.elt_rows = 10'000;
  pg.seed = 1212;
  const auto portfolio = finance::generate_portfolio(pg);
  const auto& contract = portfolio.contract(0);
  const auto& layer = contract.layers()[0];

  ReportTable table({"trials", "secondary", "wall-clock", "trials/s", "premium",
                     "PML(250y)"});

  for (const TrialId trials :
       {full_trials / 10, full_trials / 4, full_trials}) {
    data::YeltGenConfig yg;
    yg.trials = trials;
    yg.mean_events_per_year = 10.0;
    yg.seed = 555;
    const auto yelt = data::generate_yelt(pg.catalog_events, yg);

    for (const bool secondary : {false, true}) {
      core::EngineConfig config;
      config.backend = core::Backend::Threaded;
      config.secondary_uncertainty = secondary;
      const core::RealTimePricer pricer(yelt, config);
      const auto quote = pricer.price(contract, layer);
      table.add_row({format_count(static_cast<double>(trials)),
                     secondary ? "on" : "off", format_seconds(quote.seconds),
                     format_rate(static_cast<double>(trials) / quote.seconds),
                     format_count(quote.technical_premium),
                     format_count(quote.pml_250)});
    }
  }
  bench::emit("e3_pricing", table);

  std::cout << "\n[E3 verdict] paper: 25 s for 1M trials on a 2012 GPU. The rows "
               "above show this host's 1M-trial wall-clock; time scales "
               "linearly in trials, so the real-time budget translates "
               "directly to a trials-per-second requirement ("
            << format_rate(1e6 / 25.0) << " to meet the paper's 25 s).\n";
  return 0;
}
