// E11 — scenario sweep vs independent batched runs.
//
// The scenario engine's claim (src/scenario, ISSUE 3): S what-if variants
// of one book share one streamed YELT pass, one set of event→row
// resolutions, and — under secondary uncertainty, stage 2's dominant FLOP
// cost — one beta sample per (contract, layer, trial, occurrence) served to
// all S slots. Evaluating the same S variants naively costs S independent
// run_portfolio_batch runs.
//
// This bench runs a 16-scenario mixed sweep (term re-strikes, demand-surge
// scales, exclusion masks, post-event conditioning, a contract drop) on the
// E10 16-contract × 4-layer book, verifies the identity contract
// (sweep base bit-identical to run_portfolio_batch) before timing, and
// reports sweep wall-clock against 16 independent warm batched runs.
// Acceptance bar: sweep <= 0.5x the independent runs. Secondary
// uncertainty is ON (the engine default and the realistic pricing regime);
// the secondary-off ratio is reported alongside since it isolates the
// streaming/terms dedupe from the sampling dedupe.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "data/resolved_yelt.hpp"
#include "scenario/sweep.hpp"
#include "obs/obs.hpp"

using namespace riskan;

namespace {

constexpr std::size_t kScenarios = 16;

std::vector<scenario::ScenarioSpec> make_specs(const finance::Portfolio& portfolio) {
  std::vector<scenario::ScenarioSpec> specs;
  specs.reserve(kScenarios);

  // 5-point attachment sweep on every layer of the first contract.
  for (int i = 0; i < 5; ++i) {
    scenario::ScenarioSpec spec;
    spec.name = "attach+" + std::to_string(10 * (i + 1)) + "%";
    scenario::TargetedOverride o;
    o.contract = portfolio.contract(0).id();
    for (const auto& layer : portfolio.contract(0).layers()) {
      o.layer = layer.id;
      o.override.occ_retention = layer.terms.occ_retention * (1.0 + 0.1 * (i + 1));
      spec.overrides.push_back(o);
    }
    specs.push_back(std::move(spec));
  }
  // 4-point demand-surge ladder.
  for (int i = 0; i < 4; ++i) {
    scenario::ScenarioSpec spec;
    spec.name = "surge-" + std::to_string(i);
    spec.loss_scale = 1.1 + 0.1 * i;
    specs.push_back(std::move(spec));
  }
  // 3 exclusion masks, two sharing content (planner dedupes to 2 columns).
  for (int i = 0; i < 3; ++i) {
    scenario::ScenarioSpec spec;
    spec.name = "mask-" + std::to_string(i);
    const EventId base_event = (i == 2) ? 500 : 100;
    for (EventId e = base_event; e < base_event + 50; ++e) {
      spec.excluded_events.push_back(e);
    }
    specs.push_back(std::move(spec));
  }
  // 3 post-event conditioning revisions of an event in the book's footprint.
  const EventId occurred = portfolio.contract(0).elt().event_ids()[0];
  for (int i = 0; i < 3; ++i) {
    scenario::ScenarioSpec spec;
    spec.name = "post-event-" + std::to_string(i);
    spec.conditioning = scenario::PostEventConditioning{occurred, 0.8 + 0.2 * i};
    specs.push_back(std::move(spec));
  }
  // One composition change: drop the last contract.
  scenario::ScenarioSpec drop;
  drop.name = "drop-tail";
  drop.dropped_contracts = {portfolio.contract(portfolio.size() - 1).id()};
  specs.push_back(std::move(drop));

  return specs;
}

/// Best-of-N wall-clock (first run warms resolver/page caches).
template <typename Run>
double best_seconds(int reps, const Run& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::Timer watch("bench.rep");
    run();
    const double s = watch.stop();
    if (best < 0.0 || s < best) {
      best = s;
    }
  }
  return best;
}

struct Regime {
  const char* label;
  bool secondary;
};

}  // namespace

int main() {
  print_banner(std::cout, "E11: 16-scenario sweep vs 16 independent batched runs");

  const TrialId trials = bench::scaled_trials(50'000);
  const int reps = bench::quick_mode() ? 2 : 3;
  auto w = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, trials,
                                /*events_per_year=*/10.0, /*catalog_events=*/10'000,
                                /*layers_per_contract=*/4);
  const auto specs = make_specs(w.portfolio);

  bench::JsonReport json;
  json.set("experiment", std::string("e11_scenarios"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("scenarios", static_cast<std::uint64_t>(specs.size()));
  json.set("contracts", static_cast<std::uint64_t>(w.portfolio.size()));
  json.set("layers", static_cast<std::uint64_t>(w.portfolio.layer_count()));

  ReportTable table({"secondary", "16 independent", "sweep", "sweep/independent",
                     "occurrences/s sweep"});

  double headline_ratio = 0.0;
  for (const Regime regime : {Regime{"on", true}, Regime{"off", false}}) {
    data::ResolverCache cache;
    core::EngineConfig config;
    config.backend = core::Backend::Threaded;
    config.secondary_uncertainty = regime.secondary;
    config.compute_oep = true;
    config.keep_contract_ylts = false;
    config.resolver_cache = &cache;

    // Correctness gate: the identity contract, checked before timing.
    const auto reference = core::run_portfolio_batch(w.portfolio, w.yelt, config);
    const auto sweep = scenario::run_scenario_sweep(w.portfolio, w.yelt, specs, config);
    for (TrialId t = 0; t < trials; ++t) {
      if (reference.portfolio_ylt[t] != sweep.base.portfolio_ylt[t] ||
          reference.portfolio_occurrence_ylt[t] !=
              sweep.base.portfolio_occurrence_ylt[t] ||
          reference.reinstatement_premium[t] != sweep.base.reinstatement_premium[t]) {
        std::cerr << "SWEEP MISMATCH at trial " << t
                  << " — identity is not bit-identical to run_portfolio_batch\n";
        return 1;
      }
    }

    const double independent_s = best_seconds(reps, [&] {
      for (std::size_t s = 0; s < specs.size(); ++s) {
        core::run_portfolio_batch(w.portfolio, w.yelt, config);
      }
    });
    const double sweep_s = best_seconds(reps, [&] {
      scenario::run_scenario_sweep(w.portfolio, w.yelt, specs, config);
    });

    const double ratio = sweep_s / independent_s;
    // Occurrence walks the sweep serves per second (base + 16 scenarios).
    double swept_occurrences = static_cast<double>(sweep.base.occurrences_processed);
    for (const auto& result : sweep.scenarios) {
      swept_occurrences += static_cast<double>(result.occurrences_processed);
    }
    table.add_row({regime.label, format_seconds(independent_s), format_seconds(sweep_s),
                   format_fixed(ratio, 2) + "x",
                   format_rate(swept_occurrences / sweep_s)});

    const std::string prefix = std::string("secondary_") + regime.label + "_";
    json.set(prefix + "independent_seconds", independent_s);
    json.set(prefix + "sweep_seconds", sweep_s);
    json.set(prefix + "ratio", ratio);
    if (regime.secondary) {
      headline_ratio = ratio;
      json.set("plan_contracts_resolved",
               static_cast<std::uint64_t>(sweep.plan.contracts_resolved));
      json.set("plan_resolutions_avoided",
               static_cast<std::uint64_t>(sweep.plan.resolutions_avoided));
      json.set("plan_distinct_masks",
               static_cast<std::uint64_t>(sweep.plan.distinct_masks));
      json.set("plan_slots", static_cast<std::uint64_t>(sweep.plan.slots));
    }
  }
  bench::emit("e11_scenarios", table);

  std::cout << "\n[E11 verdict] sweep/independent with secondary uncertainty: "
            << format_fixed(headline_ratio, 2) << "x "
            << (headline_ratio <= 0.5 ? "(meets the <=0.5x bar)"
                                      : "(ABOVE the <=0.5x bar)")
            << "; identity bit-identical to run_portfolio_batch\n";

  json.set("headline_ratio_secondary_on", headline_ratio);
  const std::string json_path = bench::artifact_path("BENCH_e11.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return headline_ratio <= 0.5 ? 0 : 2;
}
