// E17 — vectorized secondary sampling (SIMD phase 2).
//
// E16 vectorized the occurrence algebra but left secondary-uncertainty
// groups on the scalar kernel: the beta sampler consumed one Philox word
// at a time through PhiloxStream, and its rejection loops looked
// inherently serial. Phase 2 restructures the sampler around the batched
// Philox engine (util/prng.hpp): all counter blocks for a batch of
// occurrences are computed lane-parallel, the Marsaglia–Tsang first
// attempt for both gamma marginals runs on that pre-drawn word budget, and
// only the rejection tail falls back to the scalar sampler on a fresh
// per-occurrence stream — which recomputes from the stream's start, so
// results stay bit-identical to Backend::Sequential. finalize_oep's
// running-max scan is vectorized alongside (order-invariant for its
// non-negative input class).
//
// The workload matches E16 (batched 16-contract book, dense hit lists) so
// the two reports compose: E16's secondary-on row was ~0.9x scalar
// (sampling dominated and stayed scalar); the headline here is that same
// secondary-on + OEP-on configuration, now gated at <= 0.7x. The
// full-roll-up (means + OEP) row tracks the finalize_oep win against
// E16's 0.71x.
//
// Bit-identity is verified before any timing across Sequential / Simd /
// ThreadedSimd x secondary {off, on} x OEP {off, on}, plus the distributed
// coordinator at 0 / 2 / 4 forked workers with secondary on (workers keep
// the vectorized kernel; the fold must not move a bit either way).
//
// Acceptance bar: secondary-on simd <= 0.7x scalar Sequential wall-clock
// on a host that dispatches a wide ISA. Hosts or builds without one skip
// with a notice (exit 0) and write the JSON without ratio keys, so the CI
// gate is hardware-aware.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/simd.hpp"
#include "data/resolved_yelt.hpp"
#include "data/serialize.hpp"
#include "dist/coordinator.hpp"
#include "obs/obs.hpp"
#include "util/bytes.hpp"

using namespace riskan;

namespace {

/// Best-of-N wall-clock (first run warms the resolver cache; single-shot
/// numbers are unusable on shared CI hosts).
template <typename Run>
double best_seconds(int reps, const Run& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::Timer watch("bench.rep");
    run();
    const double s = watch.stop();
    if (best < 0.0 || s < best) {
      best = s;
    }
  }
  return best;
}

bool identical(const core::EngineResult& a, const core::EngineResult& b) {
  if (a.portfolio_occurrence_ylt.trials() != b.portfolio_occurrence_ylt.trials()) {
    return false;
  }
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    if (a.portfolio_ylt[t] != b.portfolio_ylt[t] ||
        a.reinstatement_premium[t] != b.reinstatement_premium[t]) {
      return false;
    }
  }
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    if (a.portfolio_occurrence_ylt[t] != b.portfolio_occurrence_ylt[t]) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      if (a.contract_ylts[c][t] != b.contract_ylts[c][t]) {
        return false;
      }
    }
  }
  return true;
}

bool same_ylt(const data::YearLossTable& a, const data::YearLossTable& b) {
  if (a.trials() != b.trials()) {
    return false;
  }
  for (TrialId t = 0; t < a.trials(); ++t) {
    if (a[t] != b[t]) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  print_banner(std::cout, "E17: vectorized secondary sampling vs the scalar sampler");

  bench::JsonReport json;
  json.set("experiment", std::string("e17_simd_sampling"));

  const core::exec::SimdDispatch dispatch = core::exec::simd_dispatch();
  json.set("simd_compiled", std::string(dispatch.compiled ? "yes" : "no"));
  json.set("simd_isa", std::string(dispatch.name));
  json.set("simd_width", static_cast<std::uint64_t>(dispatch.width));
  if (dispatch.width == 0) {
    // Hardware-aware skip: the gate only binds where a wide ISA runs.
    std::cout << "SKIP: no wide ISA dispatched on this build/host ("
              << dispatch.reason << ")\n"
              << "Build with -DRISKAN_ENABLE_SIMD=ON on an AVX2/NEON host to "
                 "run the comparison.\n";
    json.set("skipped", std::string(dispatch.reason));
    const std::string json_path = bench::artifact_path("BENCH_e17.json");
    json.write(json_path);
    std::cout << "wrote " << json_path << "\n";
    return 0;
  }
  std::cout << "dispatched ISA: " << dispatch.name << " (" << dispatch.width
            << " Money lanes)\n\n";

  const TrialId trials = bench::scaled_trials(20'000);
  const int reps = bench::quick_mode() ? 2 : 5;
  auto w = bench::make_workload(/*contracts=*/16, /*elt_rows=*/4'000, trials,
                                /*events_per_year=*/30.0, /*catalog_events=*/10'000,
                                /*layers_per_contract=*/2);

  data::ResolverCache cache;
  core::EngineConfig config;
  config.resolver_cache = &cache;
  config.batch_contracts = true;
  config.keep_contract_ylts = true;

  // Correctness gate before any timing (and resolver-cache warm-up): the
  // batched sampler must reproduce the scalar sampler to the bit across
  // the single-process backends...
  for (const bool secondary : {false, true}) {
    for (const bool oep : {false, true}) {
      config.secondary_uncertainty = secondary;
      config.compute_oep = oep;
      config.backend = core::Backend::Sequential;
      const auto reference = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      config.backend = core::Backend::Simd;
      const auto simd = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      config.backend = core::Backend::ThreadedSimd;
      const auto threaded = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      if (!identical(reference, simd) || !identical(reference, threaded)) {
        std::cerr << "SIMD MISMATCH (secondary " << (secondary ? "on" : "off")
                  << ", oep " << (oep ? "on" : "off")
                  << ") — outputs are not bit-identical to Sequential\n";
        return 1;
      }
    }
  }

  // ...and across the distributed coordinator: 0 (in-process), 2 and 4
  // forked workers, secondary on, each fold bit-identical to the
  // single-process portfolio view. Workers keep the vectorized kernel when
  // the caller asks for Simd, so this is the batched sampler under fork.
  {
    core::EngineConfig dist_engine;
    dist_engine.backend = core::Backend::Simd;
    dist_engine.secondary_uncertainty = true;
    dist_engine.compute_oep = false;
    dist_engine.keep_contract_ylts = false;
    core::EngineConfig seq_engine = dist_engine;
    seq_engine.backend = core::Backend::Sequential;
    const auto reference =
        core::run_aggregate_analysis(w.portfolio, w.yelt, seq_engine).portfolio_ylt;

    const TrialId per_block = std::max<TrialId>(1, trials / 8);
    std::vector<dist::BlockSpec> specs;
    std::vector<std::vector<std::byte>> encoded;
    for (TrialId lo = 0; lo < trials; lo += per_block) {
      const TrialId hi = std::min<TrialId>(trials, lo + per_block);
      ByteWriter writer;
      data::encode_yelt_slice(w.yelt, lo, hi, writer);
      specs.push_back({encoded.size(), lo, hi - lo});
      encoded.push_back(writer.buffer());
    }
    const auto fetch = [&](const dist::BlockSpec& spec) { return encoded[spec.id]; };

    for (const std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
      dist::DistConfig dist_config;
      dist_config.workers = workers;
      dist_config.lease_seconds = 10.0;
      const auto result = dist::run_distributed_aggregate(w.portfolio, dist_engine,
                                                          specs, fetch, dist_config);
      if (!same_ylt(result.portfolio_ylt, reference)) {
        std::cerr << "DIST MISMATCH — secondary-on Simd fold at " << workers
                  << " workers is not bit-identical to Sequential\n";
        return 1;
      }
    }
  }
  std::cout << "bit-identity verified: Sequential == Simd == ThreadedSimd "
               "(secondary off/on x OEP off/on) and dist workers {0, 2, 4} "
               "(secondary on)\n\n";

  ReportTable table({"configuration", "sequential", "simd", "simd/sequential"});

  struct Row {
    const char* label;
    const char* key_prefix;  // "" = the headline pair
    bool secondary;
    bool oep;
  };
  constexpr Row kRows[] = {
      {"secondary + OEP (headline)", "", true, true},
      {"secondary, no OEP", "sampling_", true, false},
      {"full roll-up, means (E16 tracker)", "rollup_", false, true},
  };

  double headline_ratio = 0.0;
  for (const Row& row : kRows) {
    config.secondary_uncertainty = row.secondary;
    config.compute_oep = row.oep;
    config.backend = core::Backend::Sequential;
    const double seq_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });
    config.backend = core::Backend::Simd;
    const double simd_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });
    const double ratio = simd_s / seq_s;

    table.add_row({row.label, format_seconds(seq_s), format_seconds(simd_s),
                   format_fixed(ratio, 2) + "x"});
    const std::string prefix = row.key_prefix;
    json.set(prefix + "sequential_seconds", seq_s);
    json.set(prefix + "simd_seconds", simd_s);
    json.set(prefix.empty() ? "simd_vs_sequential_ratio"
                            : prefix + "simd_vs_sequential_ratio",
             ratio);
    if (prefix.empty()) {
      headline_ratio = ratio;
    }
  }

  bench::emit("e17_simd_sampling", table);

  // Fast-path utilization: one instrumented secondary-on Simd run, read
  // through the global metrics registry. The hit rate is the fraction of
  // occurrences resolved by the lane fast path (degenerate rows included)
  // rather than the scalar rejection-tail fallback — the number the
  // batched sampler's win rests on.
  config.secondary_uncertainty = true;
  config.compute_oep = true;
  config.backend = core::Backend::Simd;
  const auto before = obs::MetricsRegistry::global().snapshot();
  core::run_aggregate_analysis(w.portfolio, w.yelt, config);
  const auto after = obs::MetricsRegistry::global().snapshot();
  const auto delta = obs::RegistrySnapshot::delta(before, after);
  const double fast = delta.counter_value("exec.simd.sampler.fast");
  const double tail = delta.counter_value("exec.simd.sampler.tail");
  const double hit_rate = fast + tail > 0.0 ? fast / (fast + tail) : 0.0;
  std::cout << "\nsampler fast path: " << static_cast<std::uint64_t>(fast)
            << " occurrences, rejection tail: " << static_cast<std::uint64_t>(tail)
            << " (hit rate " << format_fixed(hit_rate * 100.0, 1) << "%)\n";
  json.set("sampler_fast_occurrences", static_cast<std::uint64_t>(fast));
  json.set("sampler_tail_occurrences", static_cast<std::uint64_t>(tail));
  json.set("sampler_fast_hit_rate", hit_rate);

  std::cout << "\n[E17 verdict] simd/sequential on the secondary + OEP workload: "
            << format_fixed(headline_ratio, 2) << "x "
            << (headline_ratio <= 0.7 ? "(meets the <=0.7x bar)"
                                      : "(ABOVE the <=0.7x bar)")
            << "; all outputs bit-identical across backends and dist workers\n";

  json.set("trials", static_cast<std::uint64_t>(trials));
  const std::string json_path = bench::artifact_path("BENCH_e17.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return headline_ratio <= 0.7 ? 0 : 2;
}
