// E15 — the observability tax: instrumented vs uninstrumented wall-clock,
// plus a traced 4-worker distributed run as the sample trace artifact.
//
// The obs layer (src/obs) promises near-zero cost when idle: counter adds
// behind one relaxed load + predicted branch, Timers that skip span
// emission while tracing is off. This bench prices that promise on the
// engine's hottest path and gates it:
//
//   uninstrumented — obs::set_enabled(false): every registry handle
//                    no-ops, so the run is the pre-PR-8 engine.
//   instrumented   — obs enabled (the default): per-block counters,
//                    resolver hit/miss accounting, executor histograms.
//   traced dist    — 4 forked workers with global tracing armed and a
//                    stalled worker injected, so the exported chrome
//                    trace shows per-worker lanes with lease-expiry /
//                    re-queue events. Bit-identity vs the in-process run
//                    is asserted — tracing must not touch the numbers.
//
// Measurements interleave A/B reps and take the best of each: the gate is
// instrumented <= 1.03x uninstrumented. Emits BENCH_e15.json
// (obs_overhead_ratio is the trajectory-gated key) and trace_e15.json
// (the chrome://tracing artifact CI summarises and uploads).
#include <algorithm>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "data/serialize.hpp"
#include "dist/coordinator.hpp"
#include "finance/contract.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

using namespace riskan;

namespace {

double run_once(const finance::Portfolio& portfolio,
                const data::YearEventLossTable& yelt,
                const core::EngineConfig& engine) {
  // One wall-clock sample around the whole entry point, Stopwatch-backed
  // so the measurement itself is identical in both regimes.
  Stopwatch watch;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, engine);
  (void)result;
  return watch.seconds();
}

}  // namespace

int main() {
  print_banner(std::cout, "E15: observability overhead and the traced dist run");

  const TrialId trials = bench::scaled_trials(30'000);
  auto workload = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, trials);

  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;

  const int reps = bench::quick_mode() ? 3 : 5;
  const bool was_enabled = obs::enabled();

  // Interleaved A/B reps, best-of each: scheduling noise hits both regimes
  // the same way instead of biasing whichever ran second.
  (void)run_once(workload.portfolio, workload.yelt, engine);  // warm caches
  double off_best = 1e300;
  double on_best = 1e300;
  for (int r = 0; r < reps; ++r) {
    obs::set_enabled(false);
    off_best = std::min(off_best, run_once(workload.portfolio, workload.yelt, engine));
    obs::set_enabled(true);
    on_best = std::min(on_best, run_once(workload.portfolio, workload.yelt, engine));
  }
  obs::set_enabled(was_enabled);
  const double overhead_ratio = on_best / off_best;

  // ---- Traced 4-worker distributed run ------------------------------------
  constexpr TrialId kPerBlock = 2'000;
  std::vector<std::vector<std::byte>> encoded;
  std::vector<dist::BlockSpec> specs;
  for (TrialId lo = 0; lo < trials; lo += kPerBlock) {
    const TrialId hi = std::min<TrialId>(trials, lo + kPerBlock);
    ByteWriter writer;
    data::encode_yelt_slice(workload.yelt, lo, hi, writer);
    specs.push_back({encoded.size(), lo, hi - lo});
    encoded.push_back(writer.buffer());
  }
  const auto reference =
      core::run_aggregate_analysis(workload.portfolio, workload.yelt, engine);

  dist::DistConfig dist_config;
  dist_config.workers = 4;
  // One stalled worker so the sample trace shows the scheduling events a
  // reader should expect: lease grant, expiry, re-queue.
  dist_config.lease_seconds = 0.2;
  dist_config.faults.stall = {0, 1};
  dist_config.faults.stall_seconds = 0.45;

  obs::start_global_trace();
  Stopwatch dist_watch;
  const auto dist_result = dist::run_distributed_aggregate(
      workload.portfolio, engine, specs,
      [&encoded](const dist::BlockSpec& spec) { return encoded[spec.id]; },
      dist_config);
  const double dist_seconds = dist_watch.seconds();
  const auto spans = obs::TraceBuffer::global().collect();
  const std::uint64_t spans_dropped = obs::TraceBuffer::global().dropped();
  const std::string trace_path = bench::artifact_path("trace_e15.json");
  obs::export_global_trace(trace_path);
  obs::TraceBuffer::global().set_active(false);
  obs::TraceBuffer::global().reset();

  bool bit_identical = dist_result.portfolio_ylt.trials() == trials;
  for (TrialId t = 0; bit_identical && t < trials; ++t) {
    bit_identical = dist_result.portfolio_ylt[t] == reference.portfolio_ylt[t];
  }

  std::vector<std::uint32_t> worker_lanes;
  std::size_t lease_events = 0;
  for (const auto& s : spans) {
    if (s.lane >= 1 &&
        std::find(worker_lanes.begin(), worker_lanes.end(), s.lane) == worker_lanes.end()) {
      worker_lanes.push_back(s.lane);
    }
    if (s.name == "dist.lease_grant" || s.name == "dist.lease_expired" ||
        s.name == "dist.block_requeued") {
      ++lease_events;
    }
  }

  ReportTable table({"regime", "wall-clock", "vs uninstrumented"});
  table.add_row({"uninstrumented (obs off)", format_seconds(off_best), "1.00x"});
  table.add_row({"instrumented (obs on)", format_seconds(on_best),
                 format_fixed(overhead_ratio, 3) + "x"});
  table.add_row({"traced dist (4 workers, stall)", format_seconds(dist_seconds), "-"});
  bench::emit("e15_obs_overhead", table);

  std::cout << "\ntrace: " << spans.size() << " spans (" << spans_dropped
            << " dropped) across " << worker_lanes.size()
            << " worker lanes, " << lease_events
            << " lease/re-queue events -> " << trace_path << "\n";

  const bool overhead_ok = overhead_ratio <= 1.03;
  const bool lanes_ok = worker_lanes.size() >= 2 && lease_events > 0;
  std::cout << "\n[E15 verdict] instrumented " << format_fixed(overhead_ratio, 3)
            << "x uninstrumented "
            << (overhead_ok ? "(meets the <=1.03x bar)" : "(ABOVE the <=1.03x bar)")
            << "; dist trace " << (bit_identical ? "bit-identical" : "DIVERGED")
            << ", worker lanes + lease events "
            << (lanes_ok ? "(present)" : "(MISSING)") << "\n";

  bench::JsonReport json;
  json.set("experiment", std::string("e15_obs_overhead"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("reps", static_cast<std::uint64_t>(reps));
  json.set("uninstrumented_seconds", off_best);
  json.set("instrumented_seconds", on_best);
  json.set("obs_overhead_ratio", overhead_ratio);
  json.set("traced_dist_seconds", dist_seconds);
  json.set("trace_spans", static_cast<std::uint64_t>(spans.size()));
  json.set("trace_spans_dropped", spans_dropped);
  json.set("trace_worker_lanes", static_cast<std::uint64_t>(worker_lanes.size()));
  json.set("trace_lease_events", static_cast<std::uint64_t>(lease_events));
  json.set("dist_bit_identical", std::string(bit_identical ? "yes" : "no"));
  const std::string json_path = bench::artifact_path("BENCH_e15.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  return overhead_ok && bit_identical && lanes_ok ? 0 : 2;
}
