// E12 — out-of-core streaming vs in-memory stage 2.
//
// After the TrialSource refactor, an out-of-core run rides the exact
// execution machinery of the in-memory engine: the plan is lowered once and
// re-bound per trial block, and a background prefetch pipeline
// (data::ChunkedFileSource) reads+decodes block c+1 while block c computes.
// This bench measures what that unification costs and what the overlap
// buys, on the E10 headline workload (16 contracts x 4 layers, full
// roll-up outputs, secondary off to stress the data plane rather than the
// sampler):
//
//   in-memory     — run_portfolio_batch over the resident YELT (Threaded).
//   streamed      — prefetch on (double-buffered), Threaded: the
//                   production out-of-core configuration, and the
//                   streamed/in-memory ratio's numerator.
//   overlap pair  — sync-decode vs prefetch under the *Sequential*
//                   backend: with one compute thread, any second hardware
//                   thread is free to run the producer, so the pair
//                   isolates exactly what the pipeline hides (under
//                   Threaded the pool already saturates every core and
//                   the comparison degenerates into scheduler noise).
//
// Every timed rep resolves from a fresh cache on both sides (cold-to-cold):
// at out-of-core scale there is no warm-resident alternative — the streamed
// run re-resolves each transient block by design, and handing the in-memory
// side a warm cache would measure the resolver cache (E2b's story), not the
// data plane. The warm in-memory wall-clock is reported as its own row for
// scale.
//
// Outputs are verified bit-identical across the regimes before timing.
// Acceptance bars: streamed/in-memory <= 1.5x, and prefetch beats the
// synchronous-decode baseline (prefetch/sync < 1.0 when a second hardware
// thread exists). Emits BENCH_e12.json.
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/common.hpp"
#include "core/portfolio_batch.hpp"
#include "core/streaming.hpp"
#include "data/trial_source.hpp"
#include "obs/obs.hpp"

using namespace riskan;

namespace {

template <typename Run>
double best_seconds(int reps, const Run& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::Timer watch("bench.rep");
    run();
    const double s = watch.stop();
    if (best < 0.0 || s < best) {
      best = s;
    }
  }
  return best;
}

struct StreamedTiming {
  double seconds = -1.0;
  data::ChunkedFileSourceStats stats;  // telemetry of the *winning* rep
};

/// Best-of-reps streamed run; wall-clock and pipeline telemetry are kept
/// from the same (fastest) rep so derived metrics describe the run whose
/// time is reported.
StreamedTiming best_streamed(int reps, const std::string& path, bool prefetch,
                             const finance::Portfolio& portfolio,
                             const core::EngineConfig& config) {
  StreamedTiming best;
  for (int r = 0; r < reps; ++r) {
    data::ChunkedFileSource::Options opts;
    opts.prefetch = prefetch;
    data::ChunkedFileSource source(path, opts);
    obs::Timer watch("bench.rep");
    core::run_portfolio_batch(portfolio, source, config);
    const double s = watch.stop();
    if (best.seconds < 0.0 || s < best.seconds) {
      best.seconds = s;
      best.stats = source.stats();
    }
  }
  return best;
}

bool same_results(const core::EngineResult& a, const core::EngineResult& b) {
  if (a.portfolio_ylt.trials() != b.portfolio_ylt.trials()) {
    return false;
  }
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    if (a.portfolio_ylt[t] != b.portfolio_ylt[t] ||
        a.portfolio_occurrence_ylt[t] != b.portfolio_occurrence_ylt[t] ||
        a.reinstatement_premium[t] != b.reinstatement_premium[t]) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
      if (a.contract_ylts[c][t] != b.contract_ylts[c][t]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  print_banner(std::cout, "E12: out-of-core streaming vs in-memory stage 2");

  const TrialId trials = bench::scaled_trials(50'000);
  const int reps = bench::quick_mode() ? 2 : 3;
  const TrialId per_chunk = std::max<TrialId>(1, trials / 16);

  auto w = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, trials,
                                /*events_per_year=*/10.0, /*catalog_events=*/10'000,
                                /*layers_per_contract=*/4);

  const std::string path = "/tmp/riskan_bench_e12.yeltc";
  const auto blocks = core::save_yelt_chunked(w.yelt, path, per_chunk);

  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.secondary_uncertainty = false;
  config.compute_oep = true;
  config.keep_contract_ylts = true;
  config.batch_contracts = true;

  // Correctness gate: streamed (both modes) bit-identical to in-memory.
  data::ResolverCache warm_cache;
  config.resolver_cache = &warm_cache;
  const auto reference = core::run_portfolio_batch(w.portfolio, w.yelt, config);
  {
    data::ChunkedFileSource source(path);
    if (!same_results(reference, core::run_portfolio_batch(w.portfolio, source, config))) {
      std::cerr << "STREAM MISMATCH (prefetch) — outputs are not bit-identical\n";
      return 1;
    }
    data::ChunkedFileSource::Options sync;
    sync.prefetch = false;
    data::ChunkedFileSource sync_source(path, sync);
    if (!same_results(reference,
                      core::run_portfolio_batch(w.portfolio, sync_source, config))) {
      std::cerr << "STREAM MISMATCH (sync) — outputs are not bit-identical\n";
      return 1;
    }
  }

  // Warm in-memory (cache primed by the reference run): the E2b regime,
  // reported for scale but not the ratio's baseline.
  const double warm_s = best_seconds(reps, [&] {
    core::run_portfolio_batch(w.portfolio, w.yelt, config);
  });

  // Timed reps: fresh resolver cache per rep on both sides (cold-to-cold).
  const double inmemory_s = best_seconds(reps, [&] {
    data::ResolverCache cold;
    config.resolver_cache = &cold;
    core::run_portfolio_batch(w.portfolio, w.yelt, config);
  });

  // Streamed reps resolve through the engine's run-local cache (the
  // ephemeral-source default: per-block, nothing retained) — cold every
  // pass by construction.
  config.resolver_cache = nullptr;
  const StreamedTiming streamed =
      best_streamed(reps, path, /*prefetch=*/true, w.portfolio, config);

  // The overlap pair runs Sequential: one compute thread leaves any second
  // hardware thread free for the producer, so prefetch-vs-sync measures
  // the pipeline, not pool scheduling noise.
  core::EngineConfig seq = config;
  seq.backend = core::Backend::Sequential;
  const StreamedTiming sync_seq =
      best_streamed(reps, path, /*prefetch=*/false, w.portfolio, seq);
  const StreamedTiming prefetch_seq =
      best_streamed(reps, path, /*prefetch=*/true, w.portfolio, seq);

  const double streamed_ratio = streamed.seconds / inmemory_s;
  const double prefetch_over_sync = prefetch_seq.seconds / sync_seq.seconds;
  // Overlap needs a second hardware thread to run the producer on; a
  // 1-thread host serialises the pipeline by construction, so there the
  // gate degrades to a generous overhead bound (the two regimes differ by
  // a few ms there, which is inside shared-host timing noise).
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const double prefetch_bar = hw_threads > 1 ? 1.0 : 1.25;
  // Fraction of the read+decode cost hidden behind compute: 1 when the
  // consumer never stalls, 0 when every produced byte was waited for.
  const double overlap_efficiency =
      prefetch_seq.stats.produce_seconds > 0.0
          ? std::max(0.0, 1.0 - prefetch_seq.stats.wait_seconds /
                                    prefetch_seq.stats.produce_seconds)
          : 0.0;

  ReportTable table({"regime", "wall-clock", "vs in-memory", "decode busy", "stall"});
  table.add_row({"in-memory, warm cache", format_seconds(warm_s),
                 format_fixed(warm_s / inmemory_s, 2) + "x", "-", "-"});
  table.add_row({"in-memory (batched)", format_seconds(inmemory_s), "1.00x", "-", "-"});
  table.add_row({"streamed, prefetch", format_seconds(streamed.seconds),
                 format_fixed(streamed_ratio, 2) + "x",
                 format_seconds(streamed.stats.produce_seconds),
                 format_seconds(streamed.stats.wait_seconds)});
  table.add_row({"streamed, sync (sequential)", format_seconds(sync_seq.seconds), "-",
                 format_seconds(sync_seq.stats.produce_seconds), "-"});
  table.add_row({"streamed, prefetch (sequential)", format_seconds(prefetch_seq.seconds),
                 "-", format_seconds(prefetch_seq.stats.produce_seconds),
                 format_seconds(prefetch_seq.stats.wait_seconds)});
  bench::emit("e12_outofcore", table);

  std::cout << "\n" << blocks << " blocks x " << per_chunk << " trials, "
            << format_bytes(static_cast<double>(streamed.stats.bytes_read))
            << " streamed; prefetch/sync (sequential) "
            << format_fixed(prefetch_over_sync, 2) << "x, overlap efficiency "
            << format_fixed(overlap_efficiency * 100.0, 0) << "%\n";

  std::cout << "\n[E12 verdict] streamed/in-memory "
            << format_fixed(streamed_ratio, 2) << "x "
            << (streamed_ratio <= 1.5 ? "(meets the <=1.5x bar)"
                                      : "(ABOVE the <=1.5x bar)")
            << "; prefetch/sync " << format_fixed(prefetch_over_sync, 2) << "x on "
            << hw_threads << " hardware thread(s) "
            << (prefetch_over_sync < prefetch_bar
                    ? (hw_threads > 1 ? "(overlap beats synchronous decode)"
                                      : "(within the 1-thread overhead bound)")
                    : "(ABOVE the bar)")
            << "; all outputs bit-identical across regimes\n";

  bench::JsonReport json;
  json.set("experiment", std::string("e12_outofcore"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("blocks", static_cast<std::uint64_t>(blocks));
  json.set("trials_per_chunk", static_cast<std::uint64_t>(per_chunk));
  json.set("bytes_streamed", streamed.stats.bytes_read);
  json.set("inmemory_warm_seconds", warm_s);
  json.set("inmemory_seconds", inmemory_s);
  json.set("streamed_prefetch_seconds", streamed.seconds);
  json.set("overlap_sync_seconds", sync_seq.seconds);
  json.set("overlap_prefetch_seconds", prefetch_seq.seconds);
  json.set("streamed_over_inmemory_ratio", streamed_ratio);
  json.set("prefetch_over_sync", prefetch_over_sync);
  json.set("overlap_efficiency", overlap_efficiency);
  json.set("hardware_threads", static_cast<std::uint64_t>(hw_threads));
  const std::string json_path = bench::artifact_path("BENCH_e12.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  remove_file(path);
  return streamed_ratio <= 1.5 && prefetch_over_sync < prefetch_bar ? 0 : 2;
}
