// E5 — scan versus random access (the "traditional databases don't fit"
// claim).
//
// Paper: "Traditional database management techniques do not fit the
// requirements of this stage as data needs to be scanned over rather than
// randomly access data."
//
// Same query — per-trial loss aggregation over the YELT joined with an ELT
// — executed four ways:
//   volcano row store : tuple-at-a-time iterators + hash-index probes
//                       (how an RDBMS executes it);
//   index probes only : the raw random-access inner loop without iterator
//                       overhead (best case for the index path);
//   columnar + search : streaming scan, binary-search ELT lookup (what the
//                       aggregate engine does);
//   columnar + dense  : streaming scan, O(1) dense LUT (the in-memory
//                       analytics path the paper advocates).
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "data/scan.hpp"
#include "data/volcano.hpp"
#include "obs/obs.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E5: scan vs random access (the RDBMS strawman)");

  const TrialId trials = bench::scaled_trials(400'000);
  const EventId catalog = 10'000;
  auto workload = bench::make_workload(/*contracts=*/1, /*elt_rows=*/1'000, trials,
                                       /*events_per_year=*/10.0, catalog);
  const auto& elt = workload.portfolio.contract(0).elt();
  const auto& yelt = workload.yelt;
  const double rows = static_cast<double>(yelt.entries());

  std::cout << "query: SELECT trial, SUM(mean_loss) FROM yelt JOIN elt GROUP BY trial\n"
            << "data: " << format_count(rows) << " YELT rows, " << elt.size()
            << "-row ELT\n\n";

  ReportTable table({"access path", "time", "rows/s", "slowdown vs best"});
  double best = 1e300;
  std::vector<std::pair<std::string, double>> results;

  // Volcano plan.
  {
    const data::RowYelt row_yelt(yelt);
    const data::RowElt row_elt(elt);
    obs::Timer watch("bench.e5.volcano");
    auto scan = std::make_unique<data::YeltScanOp>(row_yelt);
    auto join = std::make_unique<data::IndexJoinOp>(std::move(scan), row_elt);
    data::HashAggOp agg(std::move(join), 0, 1);
    const auto groups = data::run_group_query(agg);
    const double seconds = watch.stop();
    if (groups.empty()) {
      return 1;
    }
    results.emplace_back("volcano row store (iterator + index join)", seconds);
  }

  // Raw index probes (no iterator overhead).
  {
    const data::RowElt row_elt(elt);
    std::vector<Money> per_trial(yelt.trials(), 0.0);
    obs::Timer watch("bench.e5.index_probes");
    const auto offsets = yelt.offsets();
    const auto events = yelt.events();
    for (TrialId t = 0; t < yelt.trials(); ++t) {
      for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
        if (const auto hit = row_elt.index().find(events[i])) {
          per_trial[t] += row_elt.rows()[*hit].mean_loss;
        }
      }
    }
    results.emplace_back("hash-index probes (random access, no iterators)",
                         watch.stop());
  }

  // Columnar + binary search.
  {
    obs::Timer watch("bench.e5.columnar_sorted");
    const auto per_trial = data::scan_aggregate_sorted(yelt, elt);
    (void)per_trial;
    results.emplace_back("columnar scan + sorted ELT (engine path)", watch.stop());
  }

  // Columnar + dense LUT.
  {
    const auto lut = data::build_dense_loss_lut(elt, catalog);
    obs::Timer watch("bench.e5.columnar_lut");
    const auto per_trial = data::scan_aggregate_dense(yelt, lut);
    (void)per_trial;
    results.emplace_back("columnar scan + dense LUT (in-memory analytics)",
                         watch.stop());
  }

  for (const auto& [name, seconds] : results) {
    best = std::min(best, seconds);
  }
  for (const auto& [name, seconds] : results) {
    table.add_row({name, format_seconds(seconds), format_rate(rows / seconds),
                   format_fixed(seconds / best, 1) + "x"});
  }
  bench::emit("e5_access_paths", table);

  std::cout << "\n[E5 verdict] the in-memory-accumulation path (columnar scan + "
               "dense lookup) wins by an order of magnitude over every "
               "probe-per-row plan, including a well-implemented hash index — "
               "the paper's 'scan, don't seek / accumulate large memory' "
               "argument, measured. The binary-search variant trades that "
               "speed for catalogue-independent memory (its 10 dependent "
               "branches per probe cost as much as the hash), which is why "
               "the device engine stages ELT chunks in constant memory "
               "instead. All four paths return identical answers (verified in "
               "tests/test_data_access.cpp).\n";
  return 0;
}
