// E14 — convergence-adaptive trials: the same tail metrics at a fraction
// of the fixed budget.
//
// The question a fixed 50k-trial run never answers is whether 50k was
// needed. The adaptive controller (core/adaptive) answers it per run:
// fold decision blocks, stop when the monitored metrics' batch-means CIs
// close under target. This bench prices that answer against closed-form
// ground truth — the chain is a catmod catalogue with a known pure
// premium (sum rate_e * mean_e) and a known analytic occurrence VaR (the
// exceedance curve's inverse, catmod/analytic_ep), so "accuracy" is
// measured against the truth, not against the simulation itself:
//
//   fixed run      — the full budget, its measured mean / tail error vs
//                    the closed forms.
//   adaptive run   — same book, same table, stops itself; its trial count
//                    and the same measured errors on the stopping prefix.
//   stratified run — the variance-reduction companion: stratified mean
//                    estimation over event-frequency strata with Neyman
//                    reallocation, at exactly the adaptive run's budget,
//                    vs the uniform-sampling CI at that budget.
//
// Acceptance bars: adaptive trials <= 0.5x the fixed budget with measured
// occurrence-VaR error equal-or-better than the fixed run's (+1% of truth
// slack: both runs usually land on the same severity atom, and the prefix
// may not); stratified CI width < 1.0x the uniform-sampling width at equal
// budget. Emits BENCH_e14.json (trials_over_fixed_ratio and
// stratified_ci_width_ratio are the trajectory-gated keys).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "catmod/analytic_ep.hpp"
#include "catmod/event_catalog.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/adaptive/stratified.hpp"
#include "core/aggregate_engine.hpp"
#include "data/elt.hpp"
#include "finance/contract.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

using namespace riskan;

namespace {

struct Chain {
  catmod::EventCatalog catalog;
  data::EventLossTable elt;
  finance::Portfolio portfolio;
  double pure_premium = 0.0;
};

Chain build_chain(std::uint64_t seed) {
  catmod::CatalogConfig cc;
  cc.events = 600;
  cc.seed = seed;
  Chain chain{catmod::EventCatalog::generate(cc), {}, {}, 0.0};

  std::vector<data::EltRow> rows;
  Xoshiro256ss rng(seed + 1);
  for (EventId e = 0; e < 600; ++e) {
    const Money mean = sample_truncated_pareto(rng, 1.3, 1e4, 1e7);
    rows.push_back({e, mean, mean * 0.5, mean * 4.0});
    chain.pure_premium += chain.catalog.event(e).annual_rate * mean;
  }
  chain.elt = data::EventLossTable::from_rows(std::move(rows));

  finance::Layer ground_up;
  ground_up.id = 0;
  ground_up.terms.occ_retention = 0.0;
  ground_up.terms.occ_limit = 1e18;
  ground_up.terms.agg_limit = 1e18;
  chain.portfolio.add(finance::Contract(0, chain.elt, {ground_up}));
  return chain;
}

double sorted_quantile_of(const data::YearLossTable& ylt, double level) {
  std::vector<double> losses(ylt.losses().begin(), ylt.losses().end());
  std::sort(losses.begin(), losses.end());
  return quantile_sorted(losses, level);
}

double rel_err(double measured, double truth) {
  return std::abs(measured - truth) / truth;
}

}  // namespace

int main() {
  print_banner(std::cout, "E14: convergence-adaptive trials vs the fixed budget");

  const TrialId trials = bench::scaled_trials(50'000);
  constexpr double kTail = 0.90;

  const Chain chain = build_chain(1414);
  // Closed-form occurrence VaR at the tail level: the loss whose analytic
  // return period is 1 / (1 - tail).
  const Money true_occ_var =
      catmod::analytic_oep_loss_at(chain.catalog, chain.elt, 1.0 / (1.0 - kTail));

  catmod::CatalogYeltConfig yc;
  yc.trials = trials;
  yc.seed = 99;
  const auto yelt = catmod::simulate_yelt(chain.catalog, yc);

  core::EngineConfig fixed;
  fixed.backend = core::Backend::Sequential;
  fixed.secondary_uncertainty = false;
  fixed.compute_oep = true;
  fixed.keep_contract_ylts = false;
  const auto fixed_run = core::run_aggregate_analysis(chain.portfolio, yelt, fixed);

  core::EngineConfig adaptive = fixed;
  adaptive.adaptive.target_rel_err = 0.15;
  adaptive.adaptive.confidence = 0.90;
  adaptive.adaptive.tail_level = kTail;
  adaptive.adaptive.block_trials = std::max<TrialId>(250, trials / 40);
  adaptive.adaptive.min_trials = std::max<TrialId>(1'000, trials / 25);
  adaptive.adaptive.min_batches = 4;
  adaptive.adaptive.metrics = core::adaptive::kMean | core::adaptive::kVar |
                              core::adaptive::kTvar | core::adaptive::kOccVar;
  const auto adaptive_run = core::run_aggregate_analysis(chain.portfolio, yelt, adaptive);
  const TrialId adaptive_trials = adaptive_run.adaptive.trials_run;
  const double trials_ratio =
      static_cast<double>(adaptive_trials) / static_cast<double>(trials);

  // Measured errors vs the closed forms, for the full run and the prefix
  // the adaptive run actually paid for.
  const double fixed_mean_err = rel_err(fixed_run.portfolio_ylt.mean(), chain.pure_premium);
  const double adaptive_mean_err =
      rel_err(adaptive_run.portfolio_ylt.mean(), chain.pure_premium);
  const double fixed_tail_err =
      rel_err(sorted_quantile_of(fixed_run.portfolio_occurrence_ylt, kTail), true_occ_var);
  const double adaptive_tail_err = rel_err(
      sorted_quantile_of(adaptive_run.portfolio_occurrence_ylt, kTail), true_occ_var);

  // Stratified companion at exactly the adaptive budget: Neyman-allocated
  // event-frequency strata vs the uniform-sampling (SRS) interval a plain
  // subsample of the same size would report.
  core::adaptive::StratifiedConfig strat_config;
  strat_config.max_trials = adaptive_trials;
  strat_config.round_trials = std::max<TrialId>(256, adaptive_trials / 8);
  const auto stratified = core::adaptive::run_stratified_mean(chain.portfolio, yelt,
                                                              fixed, strat_config);
  OnlineStats population;
  for (const double loss : fixed_run.portfolio_ylt.losses()) {
    population.add(loss);
  }
  const double n = static_cast<double>(stratified.trials_sampled);
  const double fpc = 1.0 - n / static_cast<double>(trials);
  const double srs_half_width =
      normal_quantile(0.5 + strat_config.confidence / 2.0) *
      std::sqrt(fpc * population.sample_variance() / n);
  const double ci_width_ratio = stratified.half_width / srs_half_width;

  ReportTable table({"regime", "trials", "wall-clock", "mean err", "occ VaR err"});
  table.add_row({"fixed budget", std::to_string(trials), format_seconds(fixed_run.seconds),
                 format_fixed(100.0 * fixed_mean_err, 2) + "%",
                 format_fixed(100.0 * fixed_tail_err, 2) + "%"});
  table.add_row({"adaptive stop", std::to_string(adaptive_trials),
                 format_seconds(adaptive_run.seconds),
                 format_fixed(100.0 * adaptive_mean_err, 2) + "%",
                 format_fixed(100.0 * adaptive_tail_err, 2) + "%"});
  table.add_row({"stratified mean (same budget)", std::to_string(stratified.trials_sampled),
                 format_seconds(stratified.seconds),
                 format_fixed(100.0 * rel_err(stratified.mean, chain.pure_premium), 2) + "%",
                 "-"});
  bench::emit("e14_adaptive", table);

  std::cout << "\nadaptive: " << to_string(adaptive_run.adaptive.stop_reason) << " after "
            << adaptive_trials << "/" << trials << " trials ("
            << format_fixed(trials_ratio, 2) << "x the fixed budget), "
            << adaptive_run.adaptive.blocks_folded << " decision blocks of "
            << adaptive.adaptive.block_trials << "\nstratified CI half-width "
            << format_fixed(stratified.half_width, 1) << " vs uniform-sampling "
            << format_fixed(srs_half_width, 1) << " at the same budget ("
            << format_fixed(ci_width_ratio, 2) << "x)\n";

  const bool converged =
      adaptive_run.adaptive.stop_reason == core::adaptive::StopReason::Converged;
  const bool trials_ok = trials_ratio <= 0.5;
  // Equal-or-better tail accuracy with 1% of truth slack: both estimates
  // usually land on the same severity atom and the prefix may not.
  const bool accuracy_ok = adaptive_tail_err <= fixed_tail_err + 0.01;
  const bool stratified_ok = ci_width_ratio < 1.0;

  std::cout << "\n[E14 verdict] trials " << format_fixed(trials_ratio, 2) << "x "
            << (trials_ok ? "(meets the <=0.5x bar)" : "(ABOVE the <=0.5x bar)")
            << "; occ VaR error " << format_fixed(100.0 * adaptive_tail_err, 2)
            << "% vs fixed " << format_fixed(100.0 * fixed_tail_err, 2) << "% "
            << (accuracy_ok ? "(equal-or-better)" : "(WORSE than the fixed run)")
            << "; stratified CI " << format_fixed(ci_width_ratio, 2) << "x uniform "
            << (stratified_ok ? "(narrower)" : "(NOT narrower)") << "\n";

  bench::JsonReport json;
  json.set("experiment", std::string("e14_adaptive"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("block_trials", static_cast<std::uint64_t>(adaptive.adaptive.block_trials));
  json.set("target_rel_err", adaptive.adaptive.target_rel_err);
  json.set("tail_level", kTail);
  json.set("adaptive_trials", static_cast<std::uint64_t>(adaptive_trials));
  json.set("trials_over_fixed_ratio", trials_ratio);
  json.set("stop_reason", std::string(to_string(adaptive_run.adaptive.stop_reason)));
  json.set("fixed_seconds", fixed_run.seconds);
  json.set("adaptive_seconds", adaptive_run.seconds);
  json.set("fixed_mean_rel_err", fixed_mean_err);
  json.set("adaptive_mean_rel_err", adaptive_mean_err);
  json.set("fixed_tail_rel_err", fixed_tail_err);
  json.set("adaptive_tail_rel_err", adaptive_tail_err);
  json.set("stratified_trials", static_cast<std::uint64_t>(stratified.trials_sampled));
  json.set("stratified_half_width", stratified.half_width);
  json.set("srs_half_width", srs_half_width);
  json.set("stratified_ci_width_ratio", ci_width_ratio);
  const std::string json_path = bench::artifact_path("BENCH_e14.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  return converged && trials_ok && accuracy_ok && stratified_ok ? 0 : 2;
}
