// A1 — design-choice ablations (DESIGN.md section 5).
//
// Four studies that justify defaults the experiment benches rely on:
//   (1) secondary-uncertainty cost: the per-occurrence beta draw is the
//       dominant FLOP term of stage 2 — how much end-to-end time does it
//       buy, and what does the OEP scratch buffer cost on top?
//   (2) per-contract ELT footprint scaling: engine time vs rows per ELT
//       (lookup depth) at fixed trial count;
//   (3) stage-1 spatial index: exhaustive event x site sweep vs
//       grid-pruned candidates;
//   (4) bootstrap replicate count: CI stability vs cost.
#include <iostream>

#include "bench/common.hpp"
#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "core/aggregate_engine.hpp"
#include "core/bootstrap.hpp"
#include "obs/obs.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "A1: design-choice ablations");

  const TrialId trials = bench::scaled_trials(30'000);

  // ---- (1) secondary uncertainty and OEP scratch.
  {
    auto workload = bench::make_workload(8, 1'000, trials);
    ReportTable table({"secondary", "OEP buffer", "time", "occurrences/s"});
    for (const bool secondary : {false, true}) {
      for (const bool oep : {false, true}) {
        core::EngineConfig config;
        config.secondary_uncertainty = secondary;
        config.compute_oep = oep;
        config.keep_contract_ylts = false;
        const auto result =
            core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
        table.add_row({secondary ? "on" : "off", oep ? "on" : "off",
                       format_seconds(result.seconds),
                       format_rate(static_cast<double>(result.occurrences_processed) /
                                   result.seconds)});
      }
    }
    std::cout << "\n(1) secondary-uncertainty and OEP cost (8 contracts x " << trials
              << " trials)\n";
    bench::emit("a1_secondary", table);
  }

  // ---- (2) ELT footprint scaling.
  {
    ReportTable table({"ELT rows/contract", "time", "occurrences/s"});
    for (const std::size_t rows : {100UL, 400UL, 1'600UL, 6'400UL}) {
      auto workload = bench::make_workload(4, rows, trials);
      core::EngineConfig config;
      config.compute_oep = false;
      config.keep_contract_ylts = false;
      const auto result =
          core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
      table.add_row({std::to_string(rows), format_seconds(result.seconds),
                     format_rate(static_cast<double>(result.occurrences_processed) /
                                 result.seconds)});
    }
    std::cout << "\n(2) lookup-depth scaling (binary search grows log in rows; hit "
                 "ratio grows linearly)\n";
    bench::emit("a1_elt_rows", table);
  }

  // ---- (3) stage-1 spatial index.
  {
    catmod::CatalogConfig cc;
    cc.events = bench::quick_mode() ? 400u : 1'500u;
    const auto catalog = catmod::EventCatalog::generate(cc);
    catmod::ExposureConfig ec;
    ec.sites = bench::quick_mode() ? 1'000u : 4'000u;
    const auto exposure = catmod::ExposureDatabase::generate(ec);

    ReportTable table({"candidate enumeration", "pairs evaluated", "time", "ELT rows"});
    for (const bool indexed : {false, true}) {
      catmod::PipelineConfig config;
      config.parallel = false;
      config.use_spatial_index = indexed;
      catmod::PipelineStats stats;
      const auto elt = run_cat_model(catalog, exposure, config, &stats);
      table.add_row({indexed ? "uniform-grid index" : "exhaustive sweep",
                     format_count(static_cast<double>(stats.event_exposure_pairs)),
                     format_seconds(stats.seconds), std::to_string(elt.size())});
    }
    std::cout << "\n(3) stage-1 spatial index (" << cc.events << " events x " << ec.sites
              << " sites)\n";
    bench::emit("a1_spatial", table);
  }

  // ---- (4) bootstrap replicates.
  {
    auto workload = bench::make_workload(4, 500, trials);
    core::EngineConfig config;
    config.compute_oep = false;
    config.keep_contract_ylts = false;
    const auto result =
        core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);

    ReportTable table({"replicates", "time", "PML250 CI width / point"});
    for (const std::uint32_t reps : {50u, 200u, 800u}) {
      core::BootstrapConfig bc;
      bc.replicates = reps;
      obs::Timer watch("bench.a1.bootstrap");
      const auto ci = core::bootstrap_pml(result.portfolio_ylt, 250.0, bc);
      table.add_row({std::to_string(reps), format_seconds(watch.stop()),
                     format_fixed(ci.width() / ci.point * 100.0, 1) + "%"});
    }
    std::cout << "\n(4) bootstrap replicate count (YLT of " << trials << " trials)\n";
    bench::emit("a1_bootstrap", table);
  }

  std::cout << "\n[A1 verdict] secondary sampling costs ~20-30% end to end (its "
               "realism is cheap); engine throughput degrades only "
               "logarithmically in ELT depth; the spatial index removes most "
               "of stage 1's quadratic work at identical output; ~200 "
               "bootstrap replicates suffice for stable tail CIs.\n";
  return 0;
}
