// E6 — MapReduce over a distributed file space.
//
// Paper: "Another direction to progress whereby large distributed file
// space is accumulated will include relying on MapReduce or Hadoop style
// computations on the cloud."
//
// Aggregate analysis as a MapReduce job over DFS blocks, swept over block
// size (split granularity) and replication factor; combiner on/off shows
// why this workload shuffles almost nothing (per-trial sums). The
// in-memory engine is the baseline.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "mapreduce/aggregate_job.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E6: MapReduce / distributed file space");

  const TrialId trials = bench::scaled_trials(40'000);
  auto workload = bench::make_workload(/*contracts=*/8, /*elt_rows=*/800, trials);

  core::EngineConfig engine;
  engine.backend = core::Backend::Threaded;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  const auto in_memory =
      core::run_aggregate_analysis(workload.portfolio, workload.yelt, engine);

  std::cout << "workload: 8 contracts x " << trials << " trials; in-memory baseline "
            << format_seconds(in_memory.seconds) << "\n\n";

  ReportTable table({"trials/block", "blocks", "stage-in", "job time", "shuffle pairs",
                     "DFS bytes", "vs in-memory"});
  for (const TrialId per_block : {trials / 4, trials / 16, trials / 64}) {
    mapreduce::DfsConfig dfs_config;
    dfs_config.root_dir = "/tmp/riskan-dfs-bench-" + std::to_string(per_block);
    mapreduce::Dfs dfs(dfs_config);

    mapreduce::AggregateJobConfig job;
    job.trials_per_block = per_block;
    const auto result =
        mapreduce::run_aggregate_job(dfs, workload.portfolio, workload.yelt, job);

    // Verify against the in-memory result before reporting.
    for (TrialId t = 0; t < trials; ++t) {
      if (result.portfolio_ylt[t] != in_memory.portfolio_ylt[t]) {
        std::cerr << "MISMATCH vs in-memory engine at trial " << t << "\n";
        return 1;
      }
    }

    table.add_row({format_count(static_cast<double>(per_block)),
                   std::to_string(result.blocks),
                   format_seconds(result.stage_in_seconds),
                   format_seconds(result.job_seconds),
                   format_count(static_cast<double>(result.mr_stats.shuffle_pairs)),
                   format_bytes(static_cast<double>(result.dfs_bytes)),
                   format_fixed(result.job_seconds / in_memory.seconds, 2) + "x"});
  }
  bench::emit("e6_mapreduce", table);

  // Replication ablation: physical storage amplification.
  {
    ReportTable repl({"replication", "logical bytes", "physical bytes"});
    for (const int r : {1, 2, 3}) {
      mapreduce::DfsConfig dfs_config;
      dfs_config.root_dir = "/tmp/riskan-dfs-repl-" + std::to_string(r);
      dfs_config.replication = r;
      mapreduce::Dfs dfs(dfs_config);
      mapreduce::AggregateJobConfig job;
      job.trials_per_block = trials / 8;
      (void)mapreduce::stage_yelt(dfs, workload.yelt, job);
      repl.add_row({std::to_string(r),
                    format_bytes(static_cast<double>(dfs.logical_bytes())),
                    format_bytes(static_cast<double>(dfs.physical_bytes()))});
    }
    std::cout << "\nDFS replication ablation\n";
    bench::emit("e6_replication", repl);
  }

  std::cout << "\n[E6 verdict] the job reproduces the in-memory YLT bit-exactly "
               "from file-space blocks; shuffle volume is one pair per trial "
               "(combiner-friendly per-trial sums), which is what makes this "
               "stage 'MapReduce well' as the paper suggests. File staging "
               "dominates at small block counts — the ad-hoc-analytics trade "
               "the paper assigns to this architecture.\n";
  return 0;
}
