// E4 — chunking ablation.
//
// Paper claim: "The management of large data in memory employs the notion
// of chunking, which is utilising shared and constant memory as much as
// possible."
//
// Three sweeps:
//   (a) device block size (trials per block): small blocks fit their YELT
//       slice into the 48 KiB shared-memory arena but waste warp lanes and
//       launch more blocks; large blocks spill to global memory. The
//       modeled device time exposes the trade-off.
//   (a') constant-memory residency cap (ELT rows staged per gather
//       source): small caps pack every contract's table into one residency
//       chunk (one launch, gathers mostly from global memory); large caps
//       give each table full residency at the price of one launch per
//       chunk. The execution plan (core::exec) makes the choice; this
//       sweep exposes it.
//   (b) host trial-chunk grain for the threaded engine: tiny grains pay
//       scheduling overhead, huge grains lose load balance (visible only
//       with >1 core, but the sweep also shows cache effects).
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E4: chunking (shared/constant memory and trial grains)");

  const TrialId trials = bench::scaled_trials(30'000);
  auto workload = bench::make_workload(/*contracts=*/8, /*elt_rows=*/2'000, trials);

  std::cout << "workload: 8 contracts x " << trials << " trials, 2k-row ELTs\n";

  // ---- (a) device block-dim sweep.
  {
    ReportTable table({"trials/block", "residency chunks", "blocks staged",
                       "blocks spilled", "modeled device time", "host time"});
    for (const int block_dim : {16, 32, 64, 128, 256, 512, 2048}) {
      core::EngineConfig config;
      config.backend = core::Backend::DeviceSim;
      config.device_block_dim = block_dim;
      config.compute_oep = false;
      config.keep_contract_ylts = false;
      core::DeviceRunInfo info;
      config.device_info = &info;
      (void)core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
      table.add_row({std::to_string(block_dim), std::to_string(info.elt_chunks),
                     std::to_string(info.shared_staged_blocks),
                     std::to_string(info.shared_spill_blocks),
                     format_seconds(info.modeled_seconds),
                     format_seconds(info.host_seconds)});
    }
    std::cout << "\n(a) device: trials-per-block sweep (shared-memory staging)\n";
    bench::emit("e4_device_blocks", table);
  }

  // ---- (a') constant-memory residency-cap sweep.
  {
    ReportTable table({"ELT rows resident/source", "launches", "const traffic",
                       "global traffic", "modeled time"});
    for (const std::size_t rows : {64UL, 256UL, 1024UL, 0UL /* fit-to-capacity */}) {
      core::EngineConfig config;
      config.backend = core::Backend::DeviceSim;
      config.device_elt_chunk_rows = rows;
      // Batched plan: residency is shared across the whole book, so the
      // cap trades launches (chunks) against constant-memory coverage.
      config.batch_contracts = true;
      config.compute_oep = false;
      config.keep_contract_ylts = false;
      core::DeviceRunInfo info;
      config.device_info = &info;
      (void)core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
      table.add_row({rows == 0 ? "fit (auto)" : std::to_string(rows),
                     std::to_string(info.launches),
                     format_bytes(static_cast<double>(info.counters.const_read_bytes)),
                     format_bytes(static_cast<double>(info.counters.global_read_bytes)),
                     format_seconds(info.modeled_seconds)});
    }
    std::cout << "\n(a') device: constant-memory residency sweep\n";
    bench::emit("e4_device_elt_chunks", table);
  }

  // ---- (b) host grain sweep.
  {
    ReportTable table({"trials/chunk", "wall-clock", "occurrences/s"});
    for (const std::size_t grain : {8UL, 64UL, 512UL, 4096UL, 32768UL}) {
      core::EngineConfig config;
      config.backend = core::Backend::Threaded;
      config.trial_grain = grain;
      config.compute_oep = false;
      config.keep_contract_ylts = false;
      const auto result =
          core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
      table.add_row({std::to_string(grain), format_seconds(result.seconds),
                     format_rate(static_cast<double>(result.occurrences_processed) /
                                 result.seconds)});
    }
    std::cout << "\n(b) host: trial-grain sweep (threaded engine)\n";
    bench::emit("e4_host_grain", table);
  }

  std::cout << "\n[E4 verdict] the block-dim sweep shows the paper's design point: "
               "blocks sized so the trial slice fits shared memory and the ELT "
               "fits constant memory minimise modeled device time; spilling "
               "either one shifts traffic to global memory and the roofline "
               "moves.\n";
  return 0;
}
