// E1 — pipeline data volumes.
//
// Paper claims reproduced:
//   * "an analysis of 10,000 contracts for 100,000 events in 1,000
//     locations with 50,000 trial years ... the YELLT has over 5x10^16
//     entries";
//   * "The YELT is generally 1000 times smaller than the YELLT and 1000
//     times bigger than the YLT."
//
// Part A prints the analytic stage-by-stage volume table at the paper's
// exact sizing. Part B materialises a scaled-down instance (every table
// actually built; the YELLT enumerated as a stream), measures real entries
// and bytes, and checks the analytic model against the measurements.
#include <iostream>

#include "bench/common.hpp"
#include "data/table_stats.hpp"
#include "data/yellt.hpp"
#include "util/format.hpp"
#include "util/report.hpp"
#include "obs/obs.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E1: pipeline data volumes (paper SS II)");

  // ---- Part A: the paper's sizing, analytically.
  const data::VolumeModel paper(data::PipelineSizing::paper_example());
  {
    ReportTable table({"table", "entries", "bytes (packed)", "role"});
    for (const auto& row : paper.rows()) {
      table.add_row({row.table, format_count(row.entries), format_bytes(row.bytes),
                     row.role});
    }
    std::cout << "\nPaper sizing: 10k contracts x 100k events x 1k locations x 50k trials\n";
    bench::emit("e1_paper_sizing", table);

    ReportTable ratios({"ratio", "value", "paper claim"});
    ratios.add_row({"YELLT entries", format_count(paper.yellt_entries()),
                    "over 5x10^16  [reproduced exactly]"});
    ratios.add_row({"YELLT / YELT", format_count(paper.yellt_over_yelt()),
                    "~1000x smaller (location axis)"});
    ratios.add_row({"YELT / YLT (contract footprint)",
                    format_count(paper.yelt_over_ylt_footprint()),
                    "~1000x bigger (loss-causing events per contract)"});
    ratios.add_row({"YELT / YLT (dense catalogue bound)",
                    format_count(paper.yelt_over_ylt_dense()), "upper bound, 10^5"});
    std::cout << '\n';
    bench::emit("e1_ratios", ratios);
  }

  // ---- Part B: scaled-down instance, materialised and measured.
  const auto sizing = data::PipelineSizing::scaled_down();
  const data::VolumeModel model(sizing);

  auto workload = bench::make_workload(
      static_cast<std::size_t>(sizing.contracts),
      static_cast<std::size_t>(sizing.events * sizing.elt_hit_ratio),
      static_cast<TrialId>(sizing.trials), sizing.events_per_trial_year,
      static_cast<EventId>(sizing.events));

  std::vector<data::EventLossTable> elts;
  for (const auto& contract : workload.portfolio.contracts()) {
    elts.push_back(contract.elt());
  }
  const data::YelltStream stream(workload.yelt, elts,
                                 static_cast<LocationId>(sizing.locations));

  obs::Timer watch("bench.e1.stream");
  const auto yellt_entries = stream.count_entries();
  std::uint64_t streamed = 0;
  Money total_loss = 0.0;
  stream.for_each([&](const data::YelltRecord& rec) {
    ++streamed;
    total_loss += rec.loss;
  });
  const double stream_seconds = watch.stop();

  std::uint64_t elt_entries = 0;
  std::uint64_t elt_bytes = 0;
  for (const auto& elt : elts) {
    elt_entries += elt.size();
    elt_bytes += elt.byte_size();
  }

  ReportTable table({"table", "measured entries", "measured bytes", "analytic entries"});
  table.add_row({"ELT (all contracts)", format_count(static_cast<double>(elt_entries)),
                 format_bytes(static_cast<double>(elt_bytes)),
                 format_count(model.elt_entries_total())});
  table.add_row({"YELT (occurrence-sparse)",
                 format_count(static_cast<double>(workload.yelt.entries())),
                 format_bytes(static_cast<double>(workload.yelt.byte_size())),
                 format_count(sizing.trials * sizing.events_per_trial_year)});
  table.add_row({"YELLT (streamed)", format_count(static_cast<double>(yellt_entries)),
                 format_bytes(static_cast<double>(yellt_entries) *
                              data::kYelltRecordBytes),
                 "(occurrence-sparse; dense bound " +
                     format_count(model.yellt_entries()) + ")"});
  table.add_row({"YLT", format_count(sizing.trials),
                 format_bytes(sizing.trials * sizeof(Money)), format_count(sizing.trials)});
  std::cout << "\nScaled-down instance (materialised): " << format_count(sizing.contracts)
            << " contracts, " << format_count(sizing.events) << " events, "
            << format_count(sizing.locations) << " locations, "
            << format_count(sizing.trials) << " trials\n";
  bench::emit("e1_measured", table);

  std::cout << "\nYELLT stream: " << format_count(static_cast<double>(streamed))
            << " tuples enumerated in " << format_seconds(stream_seconds) << " ("
            << format_rate(static_cast<double>(streamed) / stream_seconds)
            << "), aggregate loss " << format_count(total_loss) << "\n";

  // Scaling check: doubling the trial axis doubles every per-trial table.
  data::PipelineSizing doubled = sizing;
  doubled.trials *= 2;
  const data::VolumeModel model2(doubled);
  std::cout << "\nScaling law check (trials x2): YELLT x"
            << format_fixed(model2.yellt_entries() / model.yellt_entries(), 2)
            << ", YELT x" << format_fixed(model2.yelt_entries() / model.yelt_entries(), 2)
            << ", YLT x" << format_fixed(model2.ylt_entries() / model.ylt_entries(), 2)
            << " (expected 2.00 each)\n";

  std::cout << "\n[E1 verdict] paper arithmetic reproduced: YELLT = "
            << format_count(paper.yellt_entries()) << " entries ("
            << format_bytes(paper.yellt_bytes())
            << " packed) — unmaterialisable, as the paper argues; the library "
               "exposes it only as a stream.\n";
  return 0;
}
