// Shared workload builders and reporting helpers for the experiment
// benches (E1..E9). Every bench prints the rows of the paper claim it
// reproduces (see DESIGN.md section 3) and mirrors them to CSV next to the
// binary when RISKAN_BENCH_CSV_DIR is set.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "util/format.hpp"
#include "util/report.hpp"

namespace riskan::bench {

/// Standard stage-2 workload used across E2/E4/E5/E6: a mid-size book over
/// a 10k-event catalogue.
struct Workload {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
  EventId catalog_events = 0;
};

inline Workload make_workload(std::size_t contracts, std::size_t elt_rows, TrialId trials,
                              double events_per_year = 10.0,
                              EventId catalog_events = 10'000,
                              int layers_per_contract = 1) {
  Workload w;
  w.catalog_events = catalog_events;

  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = catalog_events;
  pg.elt_rows = elt_rows;
  pg.layers_per_contract = layers_per_contract;
  pg.seed = 4242;
  w.portfolio = finance::generate_portfolio(pg);

  data::YeltGenConfig yg;
  yg.trials = trials;
  yg.mean_events_per_year = events_per_year;
  yg.seed = 777;
  w.yelt = data::generate_yelt(catalog_events, yg);
  return w;
}

/// Quick mode shrinks trial counts ~10x so the full bench suite stays fast
/// in CI; set RISKAN_BENCH_QUICK=1.
inline bool quick_mode() {
  const char* env = std::getenv("RISKAN_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline TrialId scaled_trials(TrialId full) {
  return quick_mode() ? std::max<TrialId>(1'000, full / 10) : full;
}

/// Resolves the directory bench artifacts land in: $RISKAN_BENCH_CSV_DIR
/// when set, else the working directory.
inline std::string artifact_path(const std::string& filename) {
  if (const char* dir = std::getenv("RISKAN_BENCH_CSV_DIR")) {
    return std::string(dir) + "/" + filename;
  }
  return filename;
}

/// Prints the table and optionally mirrors it to $RISKAN_BENCH_CSV_DIR/<id>.csv.
inline void emit(const std::string& experiment_id, const ReportTable& table) {
  table.print(std::cout);
  if (std::getenv("RISKAN_BENCH_CSV_DIR") != nullptr) {
    table.write_csv(artifact_path(experiment_id + ".csv"));
  }
}

/// Flat machine-readable bench record: ordered key→value pairs serialised
/// as one JSON object, so future PRs can track a perf trajectory without
/// parsing the ASCII tables. Numbers are emitted as numbers, everything
/// else as strings.
class JsonReport {
 public:
  void set(const std::string& key, double value) {
    entries_.emplace_back(key, format_fixed(value, 6));
  }
  void set(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }

  /// Writes `{ "k": v, ... }`. Keys are expected to be plain identifiers
  /// (no escaping is performed).
  void write(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << "  \"" << entries_[i].first << "\": " << entries_[i].second;
      out << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace riskan::bench
