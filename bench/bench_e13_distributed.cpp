// E13 — multi-process distribution: worker scaling + fault recovery.
//
// The dist runtime (src/dist/coordinator.hpp) shards encoded trial blocks
// across real forked worker processes with lease-based scheduling, retry /
// re-queue and straggler re-execution. This bench measures the two numbers
// that story rests on, on the stage-2 workload:
//
//   scaling curve  — run_distributed_aggregate at 1/2/4/8 workers over an
//                    in-memory block fetcher (no faults), plus the
//                    in-process fallback path (workers = 0) for reference.
//                    Every run is verified bit-identical to the
//                    single-process engine before its time counts.
//   recovery pair  — the MapReduce job on the dist transport (DFS-staged
//                    blocks, 4 workers), clean vs with an injected hard
//                    crash of worker 0 on its first task. The ratio is the
//                    price of a worker death: detect EOF, respawn, re-queue
//                    and re-execute the lost block. The retry counters
//                    (MapReduceStats::blocks_retried / bytes_resent,
//                    DistStats::worker_deaths) must move under the fault —
//                    and the output must still be bit-identical.
//   lease expiry   — one stalled-worker run with a short lease, asserting
//                    leases_expired > 0 and bit-identity (first completion
//                    wins; the straggler's late duplicate is discarded).
//
// Acceptance bars: 4-worker <= 0.6x single-worker when >= 4 hardware
// threads exist (on fewer cores the workers time-slice one CPU and the
// curve is flat by construction, so the gate degrades to a <= 1.35x
// transport-overhead bound); crash recovery <= 1.5x the clean run; fault
// counters non-zero under injection. Emits BENCH_e13.json.
#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "data/serialize.hpp"
#include "dist/coordinator.hpp"
#include "mapreduce/aggregate_job.hpp"
#include "util/bytes.hpp"

using namespace riskan;

namespace {

bool same_ylt(const data::YearLossTable& a, const data::YearLossTable& b) {
  if (a.trials() != b.trials()) {
    return false;
  }
  for (TrialId t = 0; t < a.trials(); ++t) {
    if (a[t] != b[t]) {
      return false;
    }
  }
  return true;
}

struct DistTiming {
  double seconds = -1.0;
  dist::DistStats stats;  // telemetry of the winning rep
  bool identical = true;  // every rep bit-identical to the reference
};

/// Best-of-reps distributed run; every rep's output is checked against the
/// reference (a mismatch poisons the timing — there is nothing to measure
/// if recovery is not bit-exact), and the stats kept are the winning rep's.
DistTiming best_dist(int reps, const finance::Portfolio& portfolio,
                     const core::EngineConfig& engine,
                     std::span<const dist::BlockSpec> specs,
                     const dist::BlockFetcher& fetch, const dist::DistConfig& config,
                     const data::YearLossTable& reference) {
  DistTiming best;
  for (int r = 0; r < reps; ++r) {
    const auto result = dist::run_distributed_aggregate(portfolio, engine, specs, fetch, config);
    if (!same_ylt(result.portfolio_ylt, reference)) {
      best.identical = false;
    }
    if (best.seconds < 0.0 || result.seconds < best.seconds) {
      best.seconds = result.seconds;
      best.stats = result.stats;
    }
  }
  return best;
}

struct JobTiming {
  double seconds = -1.0;
  mapreduce::MapReduceStats mr_stats;
  dist::DistStats dist_stats;
  bool identical = true;
};

JobTiming best_job(int reps, mapreduce::Dfs& dfs, const finance::Portfolio& portfolio,
                   const data::YearEventLossTable& yelt,
                   const mapreduce::AggregateJobConfig& config,
                   const data::YearLossTable& reference) {
  JobTiming best;
  for (int r = 0; r < reps; ++r) {
    const auto result = mapreduce::run_aggregate_job(dfs, portfolio, yelt, config);
    if (!same_ylt(result.portfolio_ylt, reference)) {
      best.identical = false;
    }
    if (best.seconds < 0.0 || result.job_seconds < best.seconds) {
      best.seconds = result.job_seconds;
      best.mr_stats = result.mr_stats;
      best.dist_stats = result.dist_stats;
    }
  }
  return best;
}

}  // namespace

int main() {
  print_banner(std::cout, "E13: multi-process workers — scaling and fault recovery");

  const TrialId trials = bench::scaled_trials(24'000);
  const int reps = bench::quick_mode() ? 2 : 3;
  const TrialId per_block = std::max<TrialId>(1, trials / 16);

  auto w = bench::make_workload(/*contracts=*/8, /*elt_rows=*/500, trials,
                                /*events_per_year=*/10.0, /*catalog_events=*/10'000,
                                /*layers_per_contract=*/2);

  // The engine every regime runs: the coordinator normalises workers onto
  // the pool-free Sequential kernel, so the reference uses the same knobs.
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;

  const auto reference =
      core::run_aggregate_analysis(w.portfolio, w.yelt, engine).portfolio_ylt;

  // Blocks partition the trial space; the fetcher serves pre-encoded bytes
  // from memory so the scaling curve measures the transport + workers, not
  // disk.
  std::vector<dist::BlockSpec> specs;
  std::vector<std::vector<std::byte>> encoded;
  std::uint64_t encoded_bytes = 0;
  for (TrialId lo = 0; lo < trials; lo += per_block) {
    const TrialId hi = std::min<TrialId>(trials, lo + per_block);
    ByteWriter writer;
    data::encode_yelt_slice(w.yelt, lo, hi, writer);
    specs.push_back({encoded.size(), lo, hi - lo});
    encoded.push_back(writer.buffer());
    encoded_bytes += encoded.back().size();
  }
  const auto fetch = [&](const dist::BlockSpec& spec) { return encoded[spec.id]; };

  // Scaling curve. A generous lease keeps spurious expiries out of the
  // no-fault timings even when all the workers time-slice one core.
  dist::DistConfig base;
  base.lease_seconds = 10.0;

  dist::DistConfig inproc = base;
  inproc.workers = 0;
  const DistTiming inprocess =
      best_dist(reps, w.portfolio, engine, specs, fetch, inproc, reference);

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  DistTiming scaled[4];
  bool identical = inprocess.identical;
  for (std::size_t i = 0; i < 4; ++i) {
    dist::DistConfig config = base;
    config.workers = worker_counts[i];
    scaled[i] = best_dist(reps, w.portfolio, engine, specs, fetch, config, reference);
    identical = identical && scaled[i].identical;
  }

  // Recovery pair: the MapReduce job on the dist transport, clean vs one
  // injected hard crash (worker 0, first task). The crash run pays for an
  // EOF detection, a respawn and one block re-execution.
  mapreduce::Dfs dfs({.root_dir = "/tmp/riskan-bench-e13-dfs"});
  mapreduce::AggregateJobConfig job;
  job.trials_per_block = per_block;
  job.dfs_file = "e13-yelt";
  job.dist = base;
  job.dist->workers = 4;
  // Immediate first re-queue: the pair prices detection + respawn +
  // re-execution, not the exponential-backoff politeness delay (which is
  // for *repeated* failures and would dominate a quick-mode run).
  job.dist->backoff_initial_seconds = 0.0;
  const JobTiming clean_job = best_job(reps, dfs, w.portfolio, w.yelt, job, reference);

  mapreduce::AggregateJobConfig crash_job_config = job;
  crash_job_config.dist->faults.crash = {/*worker=*/0, /*at_task=*/1};
  const JobTiming crash_job =
      best_job(reps, dfs, w.portfolio, w.yelt, crash_job_config, reference);
  dfs.remove(job.dfs_file);

  // Lease-expiry probe: a short lease and a stalled worker — the block is
  // re-executed elsewhere and the straggler's late duplicate discarded.
  dist::DistConfig stall = base;
  stall.workers = 2;
  stall.lease_seconds = 0.25;
  stall.faults.stall = {/*worker=*/0, /*at_task=*/1};
  stall.faults.stall_seconds = 0.6;
  const auto stalled =
      dist::run_distributed_aggregate(w.portfolio, engine, specs, fetch, stall);
  identical = identical && clean_job.identical && crash_job.identical &&
              same_ylt(stalled.portfolio_ylt, reference);

  if (!identical) {
    std::cerr << "DIST MISMATCH — some regime's output is not bit-identical "
                 "to the single-process run\n";
    return 1;
  }

  const double single_s = scaled[0].seconds;
  const double two_ratio = scaled[1].seconds / single_s;
  const double four_ratio = scaled[2].seconds / single_s;
  const double eight_ratio = scaled[3].seconds / single_s;
  const double recovery_overhead = crash_job.seconds / clean_job.seconds;

  // Scaling needs the cores to scale onto: with < 4 hardware threads the
  // 4 workers time-slice one CPU and four/single is ~1.0 by construction,
  // so the gate degrades to a transport-overhead bound there.
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  const double four_bar = hw_threads >= 4 ? 0.6 : 1.35;

  ReportTable table({"regime", "wall-clock", "vs 1 worker", "spawned", "deaths", "retried"});
  table.add_row({"in-process (workers = 0)", format_seconds(inprocess.seconds),
                 format_fixed(inprocess.seconds / single_s, 2) + "x", "0", "0", "0"});
  for (std::size_t i = 0; i < 4; ++i) {
    table.add_row({std::to_string(worker_counts[i]) + " worker" +
                       (worker_counts[i] == 1 ? "" : "s"),
                   format_seconds(scaled[i].seconds),
                   format_fixed(scaled[i].seconds / single_s, 2) + "x",
                   std::to_string(scaled[i].stats.workers_spawned),
                   std::to_string(scaled[i].stats.worker_deaths),
                   std::to_string(scaled[i].stats.blocks_retried)});
  }
  table.add_row({"job, 4 workers, clean", format_seconds(clean_job.seconds), "-",
                 std::to_string(clean_job.dist_stats.workers_spawned),
                 std::to_string(clean_job.dist_stats.worker_deaths),
                 std::to_string(clean_job.dist_stats.blocks_retried)});
  table.add_row({"job, 4 workers, crash fault", format_seconds(crash_job.seconds), "-",
                 std::to_string(crash_job.dist_stats.workers_spawned),
                 std::to_string(crash_job.dist_stats.worker_deaths),
                 std::to_string(crash_job.dist_stats.blocks_retried)});
  bench::emit("e13_distributed", table);

  std::cout << "\n" << specs.size() << " blocks x " << per_block << " trials, "
            << format_bytes(static_cast<double>(encoded_bytes))
            << " encoded; crash-run MapReduce ledger: blocks_retried "
            << crash_job.mr_stats.blocks_retried << ", bytes_resent "
            << format_bytes(static_cast<double>(crash_job.mr_stats.bytes_resent))
            << ", leases_expired " << crash_job.mr_stats.leases_expired
            << "; stall-run leases_expired " << stalled.stats.leases_expired
            << ", duplicates_discarded " << stalled.stats.duplicates_discarded << "\n";

  const bool counters_moved = crash_job.mr_stats.blocks_retried >= 1 &&
                              crash_job.mr_stats.bytes_resent >= 1 &&
                              crash_job.dist_stats.worker_deaths >= 1 &&
                              stalled.stats.leases_expired >= 1;
  const bool scaling_ok = four_ratio <= four_bar;
  const bool recovery_ok = recovery_overhead <= 1.5;

  std::cout << "\n[E13 verdict] 4-worker/1-worker " << format_fixed(four_ratio, 2)
            << "x on " << hw_threads << " hardware thread(s) "
            << (scaling_ok
                    ? (hw_threads >= 4 ? "(meets the <=0.6x bar)"
                                       : "(within the <=1.35x time-sliced overhead bound)")
                    : "(ABOVE the bar)")
            << "; crash recovery " << format_fixed(recovery_overhead, 2) << "x clean "
            << (recovery_ok ? "(meets the <=1.5x bar)" : "(ABOVE the <=1.5x bar)")
            << "; fault counters "
            << (counters_moved ? "moved under injection" : "DID NOT MOVE under injection")
            << "; all outputs bit-identical to single-process\n";

  bench::JsonReport json;
  json.set("experiment", std::string("e13_distributed"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("blocks", static_cast<std::uint64_t>(specs.size()));
  json.set("trials_per_block", static_cast<std::uint64_t>(per_block));
  json.set("encoded_bytes", encoded_bytes);
  json.set("inprocess_seconds", inprocess.seconds);
  json.set("single_worker_seconds", scaled[0].seconds);
  json.set("two_worker_seconds", scaled[1].seconds);
  json.set("four_worker_seconds", scaled[2].seconds);
  json.set("eight_worker_seconds", scaled[3].seconds);
  json.set("two_over_single_ratio", two_ratio);
  json.set("four_over_single_ratio", four_ratio);
  json.set("eight_over_single_ratio", eight_ratio);
  json.set("recovery_clean_seconds", clean_job.seconds);
  json.set("recovery_crash_seconds", crash_job.seconds);
  // Deliberately not a *_ratio key: the crash surcharge is a few percent of
  // one run, so run-to-run noise would dominate a trajectory gate. The
  // binary enforces the <= 1.5x bar itself.
  json.set("recovery_overhead_x", recovery_overhead);
  json.set("crash_blocks_retried", crash_job.mr_stats.blocks_retried);
  json.set("crash_bytes_resent", crash_job.mr_stats.bytes_resent);
  json.set("crash_worker_deaths",
           static_cast<std::uint64_t>(crash_job.dist_stats.worker_deaths));
  json.set("crash_workers_respawned",
           static_cast<std::uint64_t>(crash_job.dist_stats.workers_respawned));
  json.set("stall_leases_expired", stalled.stats.leases_expired);
  json.set("stall_duplicates_discarded", stalled.stats.duplicates_discarded);
  json.set("task_bytes_sent", scaled[2].stats.task_bytes_sent);
  json.set("result_bytes_received", scaled[2].stats.result_bytes_received);
  json.set("hardware_threads", static_cast<std::uint64_t>(hw_threads));
  const std::string json_path = bench::artifact_path("BENCH_e13.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";

  return scaling_ok && recovery_ok && counters_moved ? 0 : 2;
}
