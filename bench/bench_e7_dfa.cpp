// E7 — dynamic financial analysis and the terabyte claim.
//
// Paper: "The aggregate YLTs of catastrophe risks are integrated with
// investment, reserving, interest rate, market cycle, counter-party, and
// operational risks... the combination of YLTs representing different risks
// which easily results in terabytes of data. From a YLT, a reinsurer can
// derive important portfolio risk metrics such as the Probable Maximum
// Loss (PML) and the Tail Value at Risk (TVAR)."
//
// We run the six-source DFA over the catastrophe YLT at several trial
// counts, print the per-source and enterprise PML/TVaR table the paper
// describes reinsurers reporting, and extrapolate the bytes-touched
// accounting to production sizing to reproduce the terabyte arithmetic.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/allocation.hpp"
#include "dfa/dfa_engine.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E7: DFA — integrating risk YLTs (terabyte claim + PML/TVaR)");

  const TrialId trials = bench::scaled_trials(100'000);
  auto workload = bench::make_workload(/*contracts=*/12, /*elt_rows=*/600, trials);

  core::EngineConfig engine;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  auto stage2 = core::run_aggregate_analysis(workload.portfolio, workload.yelt, engine);

  // Calibrate the synthetic cat book to the balance sheet the standard risk
  // sources assume (premium volume 800M): target a 5% cat load, i.e. a 40M
  // expected annual cat loss. Pure scaling — tail shape is preserved
  // (metrics are positively homogeneous; see test_core_metrics).
  const Money target_expected_cat = 40e6;
  const double scale = target_expected_cat / stage2.portfolio_ylt.mean();
  stage2.portfolio_ylt *= scale;
  std::cout << "cat YLT calibrated to a " << format_count(target_expected_cat)
            << " expected-annual-loss book (scale x" << format_fixed(scale, 1) << ")\n";

  dfa::DfaConfig config;
  config.correlation = 0.25;
  dfa::DfaEngine dfa_engine(dfa::standard_risk_sources(2012), config);
  const auto result = dfa_engine.run(stage2.portfolio_ylt);

  // ---- The reporting table: per source and enterprise.
  {
    ReportTable table({"risk source", "mean annual loss", "VaR 99%", "TVaR 99%",
                       "PML 250y"});
    auto add = [&table](const std::string& name, const core::RiskSummary& s) {
      table.add_row({name, format_count(s.mean_annual_loss), format_count(s.var_99),
                     format_count(s.tvar_99), format_count(s.pml_250)});
    };
    add("catastrophe (stage 2 YLT)", result.cat_summary);
    for (std::size_t i = 0; i < result.source_names.size(); ++i) {
      add(result.source_names[i], result.source_summaries[i]);
    }
    add("ENTERPRISE (combined)", result.enterprise_summary);
    bench::emit("e7_risk_table", table);

    std::cout << "\neconomic capital (VaR99.6 - mean): "
              << format_count(result.economic_capital)
              << "; diversification benefit: "
              << format_count(result.diversification_benefit) << "\n";
  }

  // ---- ERM: Euler / co-TVaR capital allocation back to the businesses.
  {
    std::vector<data::YearLossTable> components = result.source_ylts;
    data::YearLossTable residual(stage2.portfolio_ylt.trials(), "catastrophe");
    for (TrialId t = 0; t < stage2.portfolio_ylt.trials(); ++t) {
      Money sources = 0.0;
      for (const auto& source : result.source_ylts) {
        sources += source[t];
      }
      residual[t] = result.enterprise_ylt[t] - sources;
    }
    components.push_back(std::move(residual));
    const auto allocation =
        core::allocate_co_tvar(components, result.enterprise_ylt, 0.99);

    ReportTable table({"component", "co-TVaR99 (allocated capital)",
                       "standalone TVaR99", "diversification factor", "share"});
    for (const auto& a : allocation.components) {
      table.add_row({a.component, format_count(a.co_tvar),
                     format_count(a.standalone_tvar),
                     format_fixed(a.diversification_factor, 2),
                     format_fixed(a.share_of_total * 100.0, 1) + "%"});
    }
    std::cout << "\nEuler capital allocation (sums exactly to enterprise TVaR99 = "
              << format_count(allocation.enterprise_tvar) << ")\n";
    bench::emit("e7_allocation", table);
  }

  // ---- Throughput + bytes-touched scaling.
  {
    ReportTable table({"trials", "DFA time", "trials/s", "YLT bytes touched"});
    for (const TrialId t : {trials / 10, trials / 3, trials}) {
      data::YearLossTable cat_slice(t, "slice");
      for (TrialId i = 0; i < t; ++i) {
        cat_slice[i] = stage2.portfolio_ylt[i];
      }
      dfa::DfaConfig slim = config;
      slim.keep_source_ylts = false;
      dfa::DfaEngine engine_t(dfa::standard_risk_sources(2012), slim);
      const auto r = engine_t.run(cat_slice);
      table.add_row({format_count(static_cast<double>(t)), format_seconds(r.seconds),
                     format_rate(static_cast<double>(t) / r.seconds),
                     format_bytes(static_cast<double>(r.ylt_bytes_touched))});
    }
    std::cout << '\n';
    bench::emit("e7_throughput", table);
  }

  // ---- Terabyte arithmetic at production sizing.
  {
    // A production DFA: tail-resolving 10M-trial YLTs, 10k contract YLTs
    // plus ~60 risk YLTs per scenario, swept over ~25 market/climate
    // scenario variants (the what-if grid a DFA study actually runs).
    const double trials_prod = 1e7;
    const double risk_ylts = 60.0;
    const double contract_ylts = 1e4;
    const double scenarios = 25.0;
    const double bytes =
        trials_prod * (risk_ylts + contract_ylts) * scenarios * sizeof(Money);
    std::cout << "\nproduction arithmetic: " << format_count(scenarios)
              << " scenario variants x " << format_count(trials_prod) << " trials x ("
              << format_count(risk_ylts) << " risk YLTs + "
              << format_count(contract_ylts) << " contract YLTs) x 8 B = "
              << format_bytes(bytes) << "  — the paper's 'easily results in "
              << "terabytes of data'.\n";
  }

  std::cout << "\n[E7 verdict] enterprise tail (TVaR99) exceeds every standalone "
               "tail while staying below their sum — diversification, the "
               "quantity DFA exists to measure; metric extraction runs at "
               "memory-scan speed, so the bottleneck is exactly the data "
               "movement the paper highlights.\n";
  return 0;
}
