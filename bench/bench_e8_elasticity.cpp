// E8 — burst elasticity across pipeline stages.
//
// Paper: "While in the first stage less than ten processors may be
// sufficient to handle the data, in the second and third stages thousands
// or even tens of thousands of processors need to be put together to
// manage and analyse the data. The elastic demand ... makes cloud-based
// computing attractive."
//
// We measure this machine's single-core throughput for each stage on small
// calibrated runs, then solve for the processors each stage needs at the
// paper's production sizing and deadlines.
#include <iostream>

#include "bench/common.hpp"
#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "core/aggregate_engine.hpp"
#include "core/elasticity.hpp"
#include "dfa/dfa_engine.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E8: burst elasticity (processors per pipeline stage)");

  // ---- Calibration runs (single-threaded, small but representative).
  // Stage 1: event-exposure pairs per second.
  catmod::CatalogConfig cc;
  cc.events = 300;
  const auto catalog = catmod::EventCatalog::generate(cc);
  catmod::ExposureConfig ec;
  ec.sites = 400;
  const auto exposure = catmod::ExposureDatabase::generate(ec);
  catmod::PipelineConfig pc;
  pc.parallel = false;
  catmod::PipelineStats s1;
  (void)catmod::run_cat_model(catalog, exposure, pc, &s1);
  const double stage1_tput = static_cast<double>(s1.event_exposure_pairs) / s1.seconds;

  // Stage 2: trial-layer occurrences per second (secondary on).
  auto workload = bench::make_workload(4, 1'000, bench::scaled_trials(20'000));
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  const auto s2 = core::run_aggregate_analysis(workload.portfolio, workload.yelt, engine);
  const double stage2_tput = static_cast<double>(s2.occurrences_processed) / s2.seconds;

  // Stage 3: DFA trial-dimension evaluations per second.
  dfa::DfaConfig dc;
  dc.keep_source_ylts = false;
  dfa::DfaEngine dfa_engine(dfa::standard_risk_sources(1), dc);
  const auto s3 = dfa_engine.run(s2.portfolio_ylt);
  const double stage3_tput =
      static_cast<double>(s2.portfolio_ylt.trials()) * 7.0 / s3.seconds;

  std::cout << "calibrated single-core throughput on this host:\n"
            << "  stage 1: " << format_rate(stage1_tput) << " event-exposure pairs\n"
            << "  stage 2: " << format_rate(stage2_tput) << " trial-layer occurrences\n"
            << "  stage 3: " << format_rate(stage3_tput) << " trial-dimension evals\n\n";

  // ---- The paper scenario, derated to the 2012 production setting.
  core::MeasuredThroughput measured;
  measured.stage1_pairs_per_sec = stage1_tput;
  measured.stage2_occurrences_per_sec = stage2_tput;
  measured.stage3_evals_per_sec = stage3_tput;
  const core::Derating derating;  // documented defaults
  std::cout << "derating to the paper's setting: 2012 core = 1/"
            << format_fixed(derating.core_2012, 0)
            << " of this core; production model complexity x"
            << format_fixed(derating.stage1_complexity, 0) << " (stage 1), x"
            << format_fixed(derating.stage2_complexity, 0) << " (stage 2), x"
            << format_fixed(derating.stage3_complexity, 0) << " (stage 3)\n\n";

  const auto rows = core::paper_scenario(measured, derating);
  ReportTable table({"pipeline stage", "cadence", "work units", "core-seconds",
                     "processors"});
  for (const auto& row : rows) {
    table.add_row({row.stage, row.cadence, format_count(row.work_units),
                   format_count(row.core_seconds), format_count(row.processors)});
  }
  bench::emit("e8_elasticity", table);

  std::cout << "\n[E8 verdict] the derived profile reproduces the paper's burst "
               "shape: stage 1 fits in single-digit processors on a weekly "
               "cadence, while the stage-2 overnight roll-up, the 25-second "
               "pricing budget, and the stage-3 DFA each demand orders of "
               "magnitude more concurrent cores — the elasticity argument for "
               "cloud deployment.\n";
  return 0;
}
