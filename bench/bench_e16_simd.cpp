// E16 — vectorized trial kernel vs the scalar kernel.
//
// The batched engine's hot loop is per-occurrence arithmetic over gathered
// ELT means: resolve ground-up, apply loss_scale, run the LayerTerms
// occurrence algebra, fold the annual sum. All of it is data-parallel
// across a trial's hit list, so Backend::Simd lifts it onto 4-wide (AVX2)
// or 2-wide (NEON) Money vectors with runtime CPU dispatch, keeping the
// lane fold in occurrence order so results stay bit-identical to
// Backend::Sequential.
//
// The workload is chosen to put weight where the vector kernel works: a
// batched 16-contract book with dense hit lists (ELT covering ~40% of the
// catalogue, ~30 qualifying events per trial-year). The headline row is
// the kernel claim, so it runs secondary off (the beta sampler is
// inherently scalar) and OEP off: the occurrence roll-up's scratch
// zeroing and finalize scan are identical memory-bound work on both
// sides, so leaving them in only shrinks every ratio toward 1 without
// measuring anything about the kernel. Full-roll-up and secondary-on
// rows are reported informationally right below it.
//
// Bit-identity across Sequential / Simd / ThreadedSimd is verified before
// any timing, across secondary {off, on} × OEP {off, on}.
//
// Acceptance bar: simd <= 0.7x scalar Sequential wall-clock on a host
// that dispatches a wide ISA. Hosts or builds without one skip with a
// notice (exit 0) and write the JSON without ratio keys, so the CI gate
// is hardware-aware.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/simd.hpp"
#include "data/resolved_yelt.hpp"
#include "obs/obs.hpp"

using namespace riskan;

namespace {

/// Best-of-N wall-clock (first run warms the resolver cache; single-shot
/// numbers are unusable on shared CI hosts).
template <typename Run>
double best_seconds(int reps, const Run& run) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    obs::Timer watch("bench.rep");
    run();
    const double s = watch.stop();
    if (best < 0.0 || s < best) {
      best = s;
    }
  }
  return best;
}

bool identical(const core::EngineResult& a, const core::EngineResult& b) {
  if (a.portfolio_occurrence_ylt.trials() != b.portfolio_occurrence_ylt.trials()) {
    return false;
  }
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    if (a.portfolio_ylt[t] != b.portfolio_ylt[t] ||
        a.reinstatement_premium[t] != b.reinstatement_premium[t]) {
      return false;
    }
  }
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    if (a.portfolio_occurrence_ylt[t] != b.portfolio_occurrence_ylt[t]) {
      return false;
    }
  }
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      if (a.contract_ylts[c][t] != b.contract_ylts[c][t]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  print_banner(std::cout, "E16: vectorized (SIMD) vs scalar trial kernel");

  bench::JsonReport json;
  json.set("experiment", std::string("e16_simd"));

  const core::exec::SimdDispatch dispatch = core::exec::simd_dispatch();
  json.set("simd_compiled", std::string(dispatch.compiled ? "yes" : "no"));
  json.set("simd_isa", std::string(dispatch.name));
  json.set("simd_width", static_cast<std::uint64_t>(dispatch.width));
  if (dispatch.width == 0) {
    // Hardware-aware skip: the gate only binds where a wide ISA runs.
    std::cout << "SKIP: no wide ISA dispatched on this build/host ("
              << dispatch.reason << ")\n"
              << "Build with -DRISKAN_ENABLE_SIMD=ON on an AVX2/NEON host to "
                 "run the comparison.\n";
    json.set("skipped", std::string(dispatch.reason));
    const std::string json_path = bench::artifact_path("BENCH_e16.json");
    json.write(json_path);
    std::cout << "wrote " << json_path << "\n";
    return 0;
  }
  std::cout << "dispatched ISA: " << dispatch.name << " (" << dispatch.width
            << " Money lanes)\n\n";

  const TrialId trials = bench::scaled_trials(20'000);
  const int reps = bench::quick_mode() ? 2 : 5;
  auto w = bench::make_workload(/*contracts=*/16, /*elt_rows=*/4'000, trials,
                                /*events_per_year=*/30.0, /*catalog_events=*/10'000,
                                /*layers_per_contract=*/2);

  data::ResolverCache cache;
  core::EngineConfig config;
  config.resolver_cache = &cache;
  config.batch_contracts = true;
  config.keep_contract_ylts = true;

  // Correctness gate before any timing (and resolver-cache warm-up): the
  // vector kernel must reproduce the scalar kernel to the bit, secondary
  // off and on, OEP off and on, single-threaded and chunk-partitioned.
  for (const bool secondary : {false, true}) {
    for (const bool oep : {false, true}) {
      config.secondary_uncertainty = secondary;
      config.compute_oep = oep;
      config.backend = core::Backend::Sequential;
      const auto reference = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      config.backend = core::Backend::Simd;
      const auto simd = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      config.backend = core::Backend::ThreadedSimd;
      const auto threaded = core::run_aggregate_analysis(w.portfolio, w.yelt, config);
      if (!identical(reference, simd) || !identical(reference, threaded)) {
        std::cerr << "SIMD MISMATCH (secondary " << (secondary ? "on" : "off")
                  << ", oep " << (oep ? "on" : "off")
                  << ") — outputs are not bit-identical to Sequential\n";
        return 1;
      }
    }
  }
  std::cout << "bit-identity verified: Sequential == Simd == ThreadedSimd "
               "(secondary off/on x OEP off/on)\n\n";

  ReportTable table({"configuration", "sequential", "simd", "simd/sequential"});

  struct Row {
    const char* label;
    const char* key_prefix;  // "" = the headline pair
    bool secondary;
    bool oep;
  };
  constexpr Row kRows[] = {
      {"means (headline)", "", false, false},
      {"full roll-up (OEP on)", "oep_", false, true},
      {"secondary on", "secondary_", true, true},
  };

  double headline_ratio = 0.0;
  for (const Row& row : kRows) {
    config.secondary_uncertainty = row.secondary;
    config.compute_oep = row.oep;
    config.backend = core::Backend::Sequential;
    const double seq_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });
    config.backend = core::Backend::Simd;
    const double simd_s = best_seconds(reps, [&] {
      core::run_aggregate_analysis(w.portfolio, w.yelt, config);
    });
    const double ratio = simd_s / seq_s;

    table.add_row({row.label, format_seconds(seq_s), format_seconds(simd_s),
                   format_fixed(ratio, 2) + "x"});
    const std::string prefix = row.key_prefix;
    json.set(prefix + "sequential_seconds", seq_s);
    json.set(prefix + "simd_seconds", simd_s);
    json.set(prefix.empty() ? "simd_vs_sequential_ratio"
                            : prefix + "simd_vs_sequential_ratio",
             ratio);
    if (prefix.empty()) {
      headline_ratio = ratio;
    }
  }

  // Informational: the composed backend (vector kernel on the threaded
  // trial partition) vs plain Threaded, same chunk grain and regime as
  // the headline.
  config.secondary_uncertainty = false;
  config.compute_oep = false;
  config.backend = core::Backend::Threaded;
  const double thr_s = best_seconds(reps, [&] {
    core::run_aggregate_analysis(w.portfolio, w.yelt, config);
  });
  config.backend = core::Backend::ThreadedSimd;
  const double thr_simd_s = best_seconds(reps, [&] {
    core::run_aggregate_analysis(w.portfolio, w.yelt, config);
  });
  const double thr_ratio = thr_simd_s / thr_s;
  table.add_row({"threaded-simd vs threaded", format_seconds(thr_s),
                 format_seconds(thr_simd_s), format_fixed(thr_ratio, 2) + "x"});
  json.set("threaded_seconds", thr_s);
  json.set("threaded_simd_seconds", thr_simd_s);
  json.set("threaded_simd_vs_threaded_ratio", thr_ratio);

  bench::emit("e16_simd", table);

  std::cout << "\n[E16 verdict] simd/sequential on the means workload: "
            << format_fixed(headline_ratio, 2) << "x "
            << (headline_ratio <= 0.7 ? "(meets the <=0.7x bar)"
                                      : "(ABOVE the <=0.7x bar)")
            << "; all outputs bit-identical across backends\n";

  json.set("trials", static_cast<std::uint64_t>(trials));
  const std::string json_path = bench::artifact_path("BENCH_e16.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return headline_ratio <= 0.7 ? 0 : 2;
}
