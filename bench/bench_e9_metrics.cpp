// E9 — risk-metric extraction and the weekly-vs-real-time boundary.
//
// Paper: "a weekly simulation can be performed with limited possibility for
// a real-time simulation" (stage 2), and stage 3's PML/TVaR reporting.
//
// Part A: metric-kernel throughput over YLT sizes 10^3..10^7 (sort-based
// exact metrics vs streaming P2 estimation — the constant-memory
// alternative for YLTs that do not fit).
// Part B: full-pipeline wall-clock extrapolation that locates the paper's
// weekly/real-time boundary on this host.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "obs/obs.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E9: risk-metric extraction (PML / TVaR / EP curves)");

  // ---- Part A: kernel throughput.
  {
    ReportTable table({"YLT trials", "summarise (sort)", "EP curve", "P2 streaming",
                       "P2 vs exact VaR99 err"});
    const TrialId max_trials = bench::quick_mode() ? 1'000'000 : 10'000'000;
    for (TrialId n = 1'000; n <= max_trials; n *= 10) {
      Xoshiro256ss rng(n);
      data::YearLossTable ylt(n);
      for (TrialId t = 0; t < n; ++t) {
        ylt[t] = std::pow(to_unit_double_open(rng()), -0.7) - 1.0;  // heavy tail
      }

      obs::Timer w1("bench.e9.summarise");
      const auto summary = core::summarise(ylt);
      const double t_summary = w1.stop();

      obs::Timer w2("bench.e9.exceedance_curve");
      const auto rps = core::standard_return_periods();
      const auto curve = core::exceedance_curve(ylt, rps);
      const double t_curve = w2.stop();
      (void)curve;

      obs::Timer w3("bench.e9.p2_quantile");
      P2Quantile p2(0.99);
      for (const double loss : ylt.losses()) {
        p2.add(loss);
      }
      const double t_p2 = w3.stop();
      const double err = std::abs(p2.value() - summary.var_99) /
                         (std::abs(summary.var_99) + 1e-12);

      table.add_row({format_count(static_cast<double>(n)), format_seconds(t_summary),
                     format_seconds(t_curve), format_seconds(t_p2),
                     format_fixed(err * 100.0, 2) + "%"});
    }
    bench::emit("e9_metric_kernels", table);
  }

  // ---- Part B: where the weekly / real-time boundary falls.
  {
    auto workload = bench::make_workload(/*contracts=*/8, /*elt_rows=*/1'000,
                                         bench::scaled_trials(20'000));
    core::EngineConfig engine;
    engine.compute_oep = false;
    engine.keep_contract_ylts = false;
    const auto result =
        core::run_aggregate_analysis(workload.portfolio, workload.yelt, engine);
    const double occ_per_s =
        static_cast<double>(result.occurrences_processed) / result.seconds;

    // Production stage-2 run: 10k contracts x 50k trials x 10 occurrences.
    const double production_occ = 1e4 * 5e4 * 10.0;
    const double single_core = production_occ / occ_per_s;

    ReportTable table({"scenario", "work (occurrences)", "time at this host's rate",
                       "paper cadence"});
    table.add_row({"portfolio roll-up (10k contracts, 50k trials)",
                   format_count(production_occ), format_seconds(single_core),
                   "weekly batch"});
    table.add_row({"portfolio roll-up, 1000 cores",
                   format_count(production_occ), format_seconds(single_core / 1000.0),
                   "overnight"});
    table.add_row({"single contract, 1M trials", format_count(1e6 * 10.0),
                   format_seconds(1e6 * 10.0 / occ_per_s), "real-time pricing (25 s)"});
    std::cout << '\n';
    bench::emit("e9_cadence", table);
  }

  std::cout << "\n[E9 verdict] exact metrics cost one sort — linearithmic and "
               "memory-bound, so metric extraction is never the bottleneck; "
               "the P2 streaming estimator holds ~1% error at constant memory "
               "for YLTs too large to buffer. The cadence table reproduces the "
               "paper's boundary: whole-portfolio runs are batch-scale while "
               "single-contract pricing is real-time-scale.\n";
  return 0;
}
