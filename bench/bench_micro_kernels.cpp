// Micro-benchmarks (google-benchmark) for the hot kernels behind E2-E5:
// counter-based RNG, secondary-uncertainty sampling, ELT lookup variants,
// columnar scans, and financial-term application. These are the ablation
// data for DESIGN.md's design choices (Philox vs xoshiro, binary search vs
// dense LUT, metering overhead).
#include <benchmark/benchmark.h>

#include "core/batch_simd.hpp"
#include "core/secondary.hpp"
#include "data/scan.hpp"
#include "data/volcano.hpp"
#include "finance/terms.hpp"
#include "util/aligned.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"

namespace riskan {
namespace {

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256ss rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_PhiloxBlock(benchmark::State& state) {
  const Philox4x32 philox(1);
  std::uint64_t ctr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(philox.block(7, ctr++));
  }
}
BENCHMARK(BM_PhiloxBlock);

void BM_PhiloxStreamUniform(benchmark::State& state) {
  const Philox4x32 philox(1);
  PhiloxStream stream(philox, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_unit_double(stream()));
  }
}
BENCHMARK(BM_PhiloxStreamUniform);

void BM_BetaSample(benchmark::State& state) {
  Xoshiro256ss rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_beta(rng, 2.0, 5.0));
  }
}
BENCHMARK(BM_BetaSample);

void BM_SecondarySample(benchmark::State& state) {
  const auto elt = data::EventLossTable::from_rows({{1, 400.0, 120.0, 1000.0}});
  const core::SecondarySampler sampler(elt);
  const Philox4x32 philox(3);
  TrialId trial = 0;
  for (auto _ : state) {
    auto stream = core::occurrence_stream(philox, 0, 0, trial++, 0);
    benchmark::DoNotOptimize(sampler.sample(0, stream));
  }
}
BENCHMARK(BM_SecondarySample);

// Batched Philox: the scalar block loop vs the dispatched lane engine over
// one counter batch — the raw-uniform-generation surface of E17. On scalar
// builds the lane call falls back to the same loop, so the pair reads as a
// no-op there.
void BM_PhiloxBlocksScalar(benchmark::State& state) {
  const Philox4x32 philox(9);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<std::uint64_t> hi(n);
  util::AlignedVector<std::uint64_t> lo(n);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = i;
    lo[i] = i * 31;
  }
  util::AlignedVector<std::uint64_t> out(2 * n);
  for (auto _ : state) {
    philox_blocks_scalar(philox, hi.data(), lo.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PhiloxBlocksScalar)->Arg(64)->Arg(256)->Arg(4'096);

void BM_PhiloxBlocksLanes(benchmark::State& state) {
  const Philox4x32 philox(9);
  const PhiloxLanes lanes(philox);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<std::uint64_t> hi(n);
  util::AlignedVector<std::uint64_t> lo(n);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = i;
    lo[i] = i * 31;
  }
  util::AlignedVector<std::uint64_t> out(2 * n);
  for (auto _ : state) {
    lanes.blocks(hi.data(), lo.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["lane_width"] = static_cast<double>(lanes.width());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PhiloxBlocksLanes)->Arg(64)->Arg(256)->Arg(4'096);

// Batched secondary sampling vs the per-occurrence scalar loop, on two
// parameter regimes: well-conditioned rows where the Marsaglia–Tsang first
// attempt almost always accepts (the fast path carries the batch), and
// high-CV rows (both beta shapes < 1) where the scalar rejection-tail
// fallback fires often. The fast-path hit rate is reported as a counter —
// it is the number that decides whether batching pays.
data::EventLossTable sampler_elt(bool rejection_heavy) {
  std::vector<data::EltRow> rows;
  for (EventId e = 0; e < 64; ++e) {
    if (rejection_heavy) {
      const Money mean = 1e5 + 3e4 * static_cast<Money>(e % 10);
      rows.push_back({e, mean, 2.2 * mean, 4e6});
    } else {
      rows.push_back({e, 1.6e6 + 1e4 * static_cast<Money>(e), 4e5, 4e6});
    }
  }
  return data::EventLossTable::from_rows(std::move(rows));
}

void run_sample_lanes(benchmark::State& state, bool rejection_heavy) {
  const auto elt = sampler_elt(rejection_heavy);
  const core::SecondarySampler sampler(elt);
  const Philox4x32 philox(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<std::uint32_t> rows(n);
  util::AlignedVector<std::uint64_t> lo(n);
  util::AlignedVector<Money> out(n);
  std::uint64_t trial = 0;
  std::uint64_t fast = 0;
  std::uint64_t tail = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<std::uint32_t>(i % sampler.size());
      lo[i] = ((trial + i) << 20) | (i & 0xF);
    }
    trial += n;
    sampler.sample_lanes(philox, /*hi_key=*/(1u << 16) | 1u, rows.data(), lo.data(), n,
                         out.data(), fast, tail);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["fast_hit_rate"] =
      fast + tail == 0 ? 0.0
                       : static_cast<double>(fast) / static_cast<double>(fast + tail);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_SampleLanesFastPath(benchmark::State& state) {
  run_sample_lanes(state, /*rejection_heavy=*/false);
}
BENCHMARK(BM_SampleLanesFastPath)->Arg(256)->Arg(4'096);

void BM_SampleLanesRejectionHeavy(benchmark::State& state) {
  run_sample_lanes(state, /*rejection_heavy=*/true);
}
BENCHMARK(BM_SampleLanesRejectionHeavy)->Arg(256)->Arg(4'096);

void run_sample_scalar(benchmark::State& state, bool rejection_heavy) {
  const auto elt = sampler_elt(rejection_heavy);
  const core::SecondarySampler sampler(elt);
  const Philox4x32 philox(11);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::AlignedVector<Money> out(n);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      PhiloxStream stream(philox, (1u << 16) | 1u, ((trial + i) << 20) | (i & 0xF));
      out[i] = sampler.sample(i % sampler.size(), stream);
    }
    trial += n;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_SampleScalarFastParams(benchmark::State& state) {
  run_sample_scalar(state, /*rejection_heavy=*/false);
}
BENCHMARK(BM_SampleScalarFastParams)->Arg(256)->Arg(4'096);

void BM_SampleScalarRejectionHeavy(benchmark::State& state) {
  run_sample_scalar(state, /*rejection_heavy=*/true);
}
BENCHMARK(BM_SampleScalarRejectionHeavy)->Arg(256)->Arg(4'096);

data::EventLossTable bench_elt(std::size_t rows) {
  std::vector<data::EltRow> out;
  out.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    out.push_back({static_cast<EventId>(i * 7), 100.0, 20.0, 500.0});
  }
  return data::EventLossTable::from_rows(std::move(out));
}

void BM_EltBinarySearch(benchmark::State& state) {
  const auto elt = bench_elt(static_cast<std::size_t>(state.range(0)));
  Xoshiro256ss rng(4);
  const EventId max_event = static_cast<EventId>(state.range(0) * 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(elt.find(static_cast<EventId>(sample_index(rng, max_event))));
  }
}
BENCHMARK(BM_EltBinarySearch)->Arg(100)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_HashIndexProbe(benchmark::State& state) {
  const auto elt = bench_elt(static_cast<std::size_t>(state.range(0)));
  const data::RowElt row_elt(elt);
  Xoshiro256ss rng(5);
  const EventId max_event = static_cast<EventId>(state.range(0) * 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        row_elt.index().find(sample_index(rng, max_event)));
  }
}
BENCHMARK(BM_HashIndexProbe)->Arg(100)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_DenseLutLookup(benchmark::State& state) {
  const auto elt = bench_elt(10'000);
  const auto lut = data::build_dense_loss_lut(elt, 70'001);
  Xoshiro256ss rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut[sample_index(rng, lut.size())]);
  }
}
BENCHMARK(BM_DenseLutLookup);

void BM_ScanAggregateDense(benchmark::State& state) {
  data::YeltGenConfig yg;
  yg.trials = 10'000;
  const auto yelt = data::generate_yelt(10'000, yg);
  const auto elt = bench_elt(1'000);
  const auto lut = data::build_dense_loss_lut(elt, 10'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::scan_aggregate_dense(yelt, lut));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(yelt.entries()));
}
BENCHMARK(BM_ScanAggregateDense);

void BM_ScanAggregateSorted(benchmark::State& state) {
  data::YeltGenConfig yg;
  yg.trials = 10'000;
  const auto yelt = data::generate_yelt(10'000, yg);
  const auto elt = bench_elt(1'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::scan_aggregate_sorted(yelt, elt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(yelt.entries()));
}
BENCHMARK(BM_ScanAggregateSorted);

void BM_ApplyOccurrence(benchmark::State& state) {
  const auto terms = finance::LayerTerms::typical();
  double loss = 1e6;
  for (auto _ : state) {
    loss = loss * 1.0000001;
    benchmark::DoNotOptimize(finance::apply_occurrence(terms, loss));
  }
}
BENCHMARK(BM_ApplyOccurrence);

// Scalar loop vs the dispatched lane kernel over one occurrence buffer —
// the E16 micro-surface. On scalar builds the lane call falls back to the
// same scalar loop, so the pair reads as a no-op there (which is the point:
// the delta IS the vectorization win).
util::AlignedVector<Money> occurrence_buffer(std::size_t n) {
  util::AlignedVector<Money> gu(n);
  Xoshiro256ss rng(7);
  for (auto& g : gu) {
    g = 2e6 * to_unit_double(rng());
  }
  return gu;
}

void BM_ApplyOccurrenceScalarBuffer(benchmark::State& state) {
  const auto terms = finance::LayerTerms::typical();
  const auto gu = occurrence_buffer(static_cast<std::size_t>(state.range(0)));
  util::AlignedVector<Money> occ(gu.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < gu.size(); ++i) {
      occ[i] = finance::apply_occurrence(terms, gu[i]);
    }
    benchmark::DoNotOptimize(occ.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gu.size()));
}
BENCHMARK(BM_ApplyOccurrenceScalarBuffer)->Arg(64)->Arg(1'024)->Arg(16'384);

void BM_ApplyOccurrenceLanes(benchmark::State& state) {
  const auto terms = finance::LayerTerms::typical();
  const auto gu = occurrence_buffer(static_cast<std::size_t>(state.range(0)));
  util::AlignedVector<Money> occ(gu.size());
  for (auto _ : state) {
    core::batch::apply_occurrence_lanes(terms, gu.data(), gu.size(), occ.data());
    benchmark::DoNotOptimize(occ.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(gu.size()));
}
BENCHMARK(BM_ApplyOccurrenceLanes)->Arg(64)->Arg(1'024)->Arg(16'384);

// The compact kernel's structure at micro scale: gather means by row index,
// then the occurrence algebra. Fused scalar loop vs gather-into-scratch +
// lane apply (the shape the vector kernel uses).
void BM_GatherApplyScalarFused(benchmark::State& state) {
  const auto terms = finance::LayerTerms::typical();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto means = occurrence_buffer(4'096);
  util::AlignedVector<std::uint32_t> rows(n);
  Xoshiro256ss rng(8);
  for (auto& r : rows) {
    r = static_cast<std::uint32_t>(sample_index(rng, means.size()));
  }
  util::AlignedVector<Money> occ(n);
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      occ[k] = finance::apply_occurrence(terms, means[rows[k]]);
    }
    benchmark::DoNotOptimize(occ.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GatherApplyScalarFused)->Arg(1'024)->Arg(16'384);

void BM_GatherApplyLanes(benchmark::State& state) {
  const auto terms = finance::LayerTerms::typical();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto means = occurrence_buffer(4'096);
  util::AlignedVector<std::uint32_t> rows(n);
  Xoshiro256ss rng(8);
  for (auto& r : rows) {
    r = static_cast<std::uint32_t>(sample_index(rng, means.size()));
  }
  util::AlignedVector<Money> gu(n);
  util::AlignedVector<Money> occ(n);
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      gu[k] = means[rows[k]];
    }
    core::batch::apply_occurrence_lanes(terms, gu.data(), n, occ.data());
    benchmark::DoNotOptimize(occ.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GatherApplyLanes)->Arg(1'024)->Arg(16'384);

void BM_NormalInvCdf(benchmark::State& state) {
  double p = 0.0001;
  for (auto _ : state) {
    p += 1e-7;
    if (p >= 0.9999) {
      p = 0.0001;
    }
    benchmark::DoNotOptimize(normal_inv_cdf(p));
  }
}
BENCHMARK(BM_NormalInvCdf);

}  // namespace
}  // namespace riskan

BENCHMARK_MAIN();
