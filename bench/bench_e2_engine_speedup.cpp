// E2 — aggregate-analysis engine speedup.
//
// Paper claim: "Methods for accumulating large shared memory includes the
// use of many-core GPUs for simulating portfolio analysis [7] which are 15x
// times faster than the sequential counterpart."
//
// We run the identical aggregate analysis on the three backends:
//   sequential   — the baseline of the paper's 15x;
//   threaded     — host shared-memory parallelism (measured);
//   device-sim   — the GPU execution model; results are bit-identical and
//                  metered, and the calibrated Fermi-class performance
//                  model converts the counters into a modeled device time.
// Honesty note: this container has no GPU and may have a single core, so
// the *measured* columns show what this host can do, while the *modeled*
// column shows what the counted work maps to on the paper's hardware
// class. EXPERIMENTS.md discusses both.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E2: engine speedup (paper's '15x' claim)");

  const TrialId trials = bench::scaled_trials(50'000);
  auto workload = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, trials);

  std::cout << "workload: " << workload.portfolio.size() << " contracts x "
            << trials << " trials, "
            << format_count(static_cast<double>(workload.yelt.entries()))
            << " YELT occurrences, secondary uncertainty ON\n\n";

  core::EngineConfig config;
  config.secondary_uncertainty = true;
  config.compute_oep = false;
  config.keep_contract_ylts = false;

  config.backend = core::Backend::Sequential;
  const auto seq = core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);

  config.backend = core::Backend::Threaded;
  const auto thr = core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);

  config.backend = core::Backend::DeviceSim;
  core::DeviceRunInfo device_info;
  config.device_info = &device_info;
  const auto dev = core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);
  config.device_info = nullptr;

  // Sanity: identical results across backends.
  for (TrialId t = 0; t < trials; ++t) {
    if (seq.portfolio_ylt[t] != thr.portfolio_ylt[t] ||
        seq.portfolio_ylt[t] != dev.portfolio_ylt[t]) {
      std::cerr << "BACKEND MISMATCH at trial " << t << " — results are not comparable\n";
      return 1;
    }
  }

  const double occ_per_s_seq =
      static_cast<double>(seq.occurrences_processed) / seq.seconds;

  ReportTable table({"backend", "time", "occurrences/s", "speedup vs sequential",
                     "basis"});
  table.add_row({"sequential (1 core)", format_seconds(seq.seconds),
                 format_rate(occ_per_s_seq), "1.00x", "measured"});
  table.add_row({"threaded (shared memory)", format_seconds(thr.seconds),
                 format_rate(static_cast<double>(thr.occurrences_processed) / thr.seconds),
                 format_fixed(seq.seconds / thr.seconds, 2) + "x", "measured"});
  table.add_row({"device-sim (host exec)", format_seconds(dev.seconds),
                 format_rate(static_cast<double>(dev.occurrences_processed) / dev.seconds),
                 format_fixed(seq.seconds / dev.seconds, 2) + "x", "measured"});
  table.add_row({"device model (Fermi-class)", format_seconds(device_info.modeled_seconds),
                 format_rate(static_cast<double>(dev.occurrences_processed) /
                             device_info.modeled_seconds),
                 format_fixed(seq.seconds / device_info.modeled_seconds, 2) + "x",
                 "modeled from metered kernel traffic"});
  bench::emit("e2_speedup", table);

  std::cout << "\ndevice kernel accounting: " << device_info.launches << " launches, "
            << device_info.elt_chunks << " ELT constant-memory chunks, "
            << device_info.shared_staged_blocks << " blocks staged in shared memory, "
            << device_info.shared_spill_blocks << " spilled to global\n"
            << "traffic: global "
            << format_bytes(static_cast<double>(device_info.counters.global_read_bytes +
                                                device_info.counters.global_write_bytes))
            << ", shared "
            << format_bytes(static_cast<double>(device_info.counters.shared_read_bytes +
                                                device_info.counters.shared_write_bytes))
            << ", constant "
            << format_bytes(static_cast<double>(device_info.counters.const_read_bytes))
            << ", " << format_count(static_cast<double>(device_info.counters.flops))
            << " FLOPs\n";

  std::cout << "\n[E2 verdict] paper reports 15x GPU vs sequential; the modeled "
               "many-core speedup above is the reproduction of that shape "
               "(exact factor depends on host CPU vs 2012 baseline). Backends "
               "agree bit-exactly, so the comparison is apples to apples.\n";

  // ---- Resolver ablation: pre-joined event→row column vs the seed's
  // per-occurrence binary search, on a multi-layer threaded workload.
  // Secondary uncertainty off isolates the lookup path (with it on, beta
  // sampling dominates the kernel and dilutes the hoist); the multi-layer
  // book is where the resolution amortises across layers.
  print_banner(std::cout, "E2b: ELT-lookup resolver ablation");

  const TrialId ab_trials = bench::scaled_trials(50'000);
  auto ab = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, ab_trials,
                                 /*events_per_year=*/10.0, /*catalog_events=*/10'000,
                                 /*layers_per_contract=*/4);
  std::cout << "workload: " << ab.portfolio.size() << " contracts x "
            << ab.portfolio.layer_count() << " layers x " << ab_trials << " trials, "
            << format_count(static_cast<double>(ab.yelt.entries()))
            << " YELT occurrences, secondary uncertainty OFF\n\n";

  core::EngineConfig ab_config;
  ab_config.backend = core::Backend::Threaded;
  ab_config.secondary_uncertainty = false;
  ab_config.compute_oep = false;
  ab_config.keep_contract_ylts = false;

  data::ResolverCache ab_cache;
  ab_config.resolver_cache = &ab_cache;

  ab_config.use_resolver = false;
  const auto naive = core::run_aggregate_analysis(ab.portfolio, ab.yelt, ab_config);

  ab_config.use_resolver = true;
  const auto cold = core::run_aggregate_analysis(ab.portfolio, ab.yelt, ab_config);
  const auto warm = core::run_aggregate_analysis(ab.portfolio, ab.yelt, ab_config);

  for (TrialId t = 0; t < ab_trials; ++t) {
    if (naive.portfolio_ylt[t] != cold.portfolio_ylt[t] ||
        naive.portfolio_ylt[t] != warm.portfolio_ylt[t]) {
      std::cerr << "RESOLVER MISMATCH at trial " << t
                << " — YLTs are not bit-identical\n";
      return 1;
    }
  }

  const auto throughput = [](const core::EngineResult& r) {
    return static_cast<double>(r.occurrences_processed) / r.seconds;
  };
  const double speedup_cold = naive.seconds / cold.seconds;
  const double speedup_warm = naive.seconds / warm.seconds;

  ReportTable ab_table({"lookup path", "time", "occurrences/s", "speedup vs naive"});
  ab_table.add_row({"per-occurrence binary search (seed)", format_seconds(naive.seconds),
                    format_rate(throughput(naive)), "1.00x"});
  ab_table.add_row({"resolver, cold cache (builds pre-join)",
                    format_seconds(cold.seconds), format_rate(throughput(cold)),
                    format_fixed(speedup_cold, 2) + "x"});
  ab_table.add_row({"resolver, warm cache", format_seconds(warm.seconds),
                    format_rate(throughput(warm)), format_fixed(speedup_warm, 2) + "x"});
  bench::emit("e2b_resolver", ab_table);

  std::cout << "\nresolver build time (cold run): "
            << format_seconds(cold.resolve_seconds) << "; YLTs bit-identical across "
            << "all three runs\n"
            << "\n[E2b verdict] the pre-joined row column replaces "
            << format_count(static_cast<double>(naive.elt_lookups))
            << " found binary searches per run with direct gathers; warm speedup "
            << format_fixed(speedup_warm, 2) << "x"
            << (speedup_warm >= 1.5 ? " (meets the >=1.5x bar)" : " (BELOW the 1.5x bar)")
            << "\n";

  // Machine-readable record for the perf trajectory.
  bench::JsonReport json;
  json.set("experiment", std::string("e2_engine_speedup"));
  json.set("trials", static_cast<std::uint64_t>(trials));
  json.set("yelt_entries", workload.yelt.entries());
  json.set("seq_seconds", seq.seconds);
  json.set("thr_seconds", thr.seconds);
  json.set("device_host_seconds", dev.seconds);
  json.set("device_modeled_seconds", device_info.modeled_seconds);
  json.set("thr_speedup_vs_seq", seq.seconds / thr.seconds);
  json.set("modeled_speedup_vs_seq", seq.seconds / device_info.modeled_seconds);
  json.set("ablation_trials", static_cast<std::uint64_t>(ab_trials));
  json.set("ablation_layers", static_cast<std::uint64_t>(ab.portfolio.layer_count()));
  json.set("naive_seconds", naive.seconds);
  json.set("resolver_cold_seconds", cold.seconds);
  json.set("resolver_warm_seconds", warm.seconds);
  json.set("resolver_build_seconds", cold.resolve_seconds);
  json.set("naive_occurrences_per_s", throughput(naive));
  json.set("resolver_warm_occurrences_per_s", throughput(warm));
  json.set("resolver_speedup_cold", speedup_cold);
  json.set("resolver_speedup_warm", speedup_warm);
  const std::string json_path = bench::artifact_path("BENCH_e2.json");
  json.write(json_path);
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
