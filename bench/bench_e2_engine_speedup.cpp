// E2 — aggregate-analysis engine speedup.
//
// Paper claim: "Methods for accumulating large shared memory includes the
// use of many-core GPUs for simulating portfolio analysis [7] which are 15x
// times faster than the sequential counterpart."
//
// We run the identical aggregate analysis on the three backends:
//   sequential   — the baseline of the paper's 15x;
//   threaded     — host shared-memory parallelism (measured);
//   device-sim   — the GPU execution model; results are bit-identical and
//                  metered, and the calibrated Fermi-class performance
//                  model converts the counters into a modeled device time.
// Honesty note: this container has no GPU and may have a single core, so
// the *measured* columns show what this host can do, while the *modeled*
// column shows what the counted work maps to on the paper's hardware
// class. EXPERIMENTS.md discusses both.
#include <iostream>

#include "bench/common.hpp"
#include "core/aggregate_engine.hpp"
#include "core/device_engine.hpp"
#include "util/stopwatch.hpp"

using namespace riskan;

int main() {
  print_banner(std::cout, "E2: engine speedup (paper's '15x' claim)");

  const TrialId trials = bench::scaled_trials(50'000);
  auto workload = bench::make_workload(/*contracts=*/16, /*elt_rows=*/1'000, trials);

  std::cout << "workload: " << workload.portfolio.size() << " contracts x "
            << trials << " trials, "
            << format_count(static_cast<double>(workload.yelt.entries()))
            << " YELT occurrences, secondary uncertainty ON\n\n";

  core::EngineConfig config;
  config.secondary_uncertainty = true;
  config.compute_oep = false;
  config.keep_contract_ylts = false;

  config.backend = core::Backend::Sequential;
  const auto seq = core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);

  config.backend = core::Backend::Threaded;
  const auto thr = core::run_aggregate_analysis(workload.portfolio, workload.yelt, config);

  config.backend = core::Backend::DeviceSim;
  core::DeviceRunInfo device_info;
  const auto dev = core::run_aggregate_device(workload.portfolio, workload.yelt, config,
                                              DeviceSpec{}, &device_info);

  // Sanity: identical results across backends.
  for (TrialId t = 0; t < trials; ++t) {
    if (seq.portfolio_ylt[t] != thr.portfolio_ylt[t] ||
        seq.portfolio_ylt[t] != dev.portfolio_ylt[t]) {
      std::cerr << "BACKEND MISMATCH at trial " << t << " — results are not comparable\n";
      return 1;
    }
  }

  const double occ_per_s_seq =
      static_cast<double>(seq.occurrences_processed) / seq.seconds;

  ReportTable table({"backend", "time", "occurrences/s", "speedup vs sequential",
                     "basis"});
  table.add_row({"sequential (1 core)", format_seconds(seq.seconds),
                 format_rate(occ_per_s_seq), "1.00x", "measured"});
  table.add_row({"threaded (shared memory)", format_seconds(thr.seconds),
                 format_rate(static_cast<double>(thr.occurrences_processed) / thr.seconds),
                 format_fixed(seq.seconds / thr.seconds, 2) + "x", "measured"});
  table.add_row({"device-sim (host exec)", format_seconds(dev.seconds),
                 format_rate(static_cast<double>(dev.occurrences_processed) / dev.seconds),
                 format_fixed(seq.seconds / dev.seconds, 2) + "x", "measured"});
  table.add_row({"device model (Fermi-class)", format_seconds(device_info.modeled_seconds),
                 format_rate(static_cast<double>(dev.occurrences_processed) /
                             device_info.modeled_seconds),
                 format_fixed(seq.seconds / device_info.modeled_seconds, 2) + "x",
                 "modeled from metered kernel traffic"});
  bench::emit("e2_speedup", table);

  std::cout << "\ndevice kernel accounting: " << device_info.launches << " launches, "
            << device_info.elt_chunks << " ELT constant-memory chunks, "
            << device_info.shared_staged_blocks << " blocks staged in shared memory, "
            << device_info.shared_spill_blocks << " spilled to global\n"
            << "traffic: global "
            << format_bytes(static_cast<double>(device_info.counters.global_read_bytes +
                                                device_info.counters.global_write_bytes))
            << ", shared "
            << format_bytes(static_cast<double>(device_info.counters.shared_read_bytes +
                                                device_info.counters.shared_write_bytes))
            << ", constant "
            << format_bytes(static_cast<double>(device_info.counters.const_read_bytes))
            << ", " << format_count(static_cast<double>(device_info.counters.flops))
            << " FLOPs\n";

  std::cout << "\n[E2 verdict] paper reports 15x GPU vs sequential; the modeled "
               "many-core speedup above is the reproduction of that shape "
               "(exact factor depends on host CPU vs 2012 baseline). Backends "
               "agree bit-exactly, so the comparison is apples to apples.\n";
  return 0;
}
