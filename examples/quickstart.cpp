// Quickstart: the shortest path through the library.
//
//   1. generate a synthetic portfolio and a pre-simulated YELT;
//   2. run aggregate analysis (stage 2);
//   3. read the risk metrics off the resulting YLT.
//
// Build & run:  ./build/example_quickstart
#include <iostream>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "util/format.hpp"

using namespace riskan;

int main() {
  // A small book: 50 contracts drawing events from a 5,000-event catalogue.
  finance::PortfolioGenConfig book;
  book.contracts = 50;
  book.catalog_events = 5'000;
  book.elt_rows = 500;
  const auto portfolio = finance::generate_portfolio(book);

  // The "consistent lens": one pre-simulated table of 20,000 alternative
  // contractual years, shared by every analysis downstream.
  data::YeltGenConfig lens;
  lens.trials = 20'000;
  lens.mean_events_per_year = 10.0;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);

  // Aggregate analysis on the threaded shared-memory backend.
  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);

  std::cout << "aggregate analysis: " << portfolio.size() << " contracts x "
            << yelt.trials() << " trials in " << format_seconds(result.seconds) << " ("
            << format_rate(static_cast<double>(result.occurrences_processed) /
                           result.seconds)
            << " occurrences)\n\n";

  const auto aep = core::summarise(result.portfolio_ylt);
  const auto oep = core::summarise(result.portfolio_occurrence_ylt);
  std::cout << "portfolio risk profile\n"
            << "  expected annual loss : " << format_count(aep.mean_annual_loss) << "\n"
            << "  VaR 99%              : " << format_count(aep.var_99) << "\n"
            << "  TVaR 99%             : " << format_count(aep.tvar_99) << "\n"
            << "  PML 1-in-250 (AEP)   : " << format_count(aep.pml_250) << "\n"
            << "  PML 1-in-250 (OEP)   : " << format_count(oep.pml_250) << "\n";

  std::cout << "\nEP curve (annual aggregate)\n";
  const auto rps = core::standard_return_periods();
  for (const auto& point : core::exceedance_curve(result.portfolio_ylt, rps)) {
    std::cout << "  1-in-" << format_fixed(point.return_period_years, 0) << "y : "
              << format_count(point.loss) << "\n";
  }
  return 0;
}
