// Portfolio roll-up with warehouse slicing: run portfolio-batched aggregate
// analysis across a whole book — one streamed YELT pass serving every
// contract — pre-compute the OLAP cube, and answer the questions a chief
// risk officer actually asks ("where is my hurricane tail?").
//
// Build & run:  ./build/example_portfolio_analysis
#include <iostream>

#include "core/metrics.hpp"
#include "core/portfolio_batch.hpp"
#include "util/format.hpp"
#include "util/report.hpp"
#include "warehouse/cube.hpp"

using namespace riskan;

int main() {
  finance::PortfolioGenConfig book;
  book.contracts = 200;
  book.catalog_events = 10'000;
  book.elt_rows = 400;
  const auto portfolio = finance::generate_portfolio(book);

  data::YeltGenConfig lens;
  lens.trials = 10'000;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);

  // A 200-contract book over one shared YELT is exactly the shape the
  // batched path exists for: run_portfolio_batch streams each trial chunk
  // once for all 200 layer stacks (bit-identical to the per-contract loop,
  // several times faster on books this wide).
  core::EngineConfig config;
  config.backend = core::Backend::Threaded;
  config.keep_contract_ylts = true;  // the cube needs per-contract YLTs
  const auto result = core::run_portfolio_batch(portfolio, yelt, config);
  std::cout << "stage 2 (portfolio-batched): " << portfolio.size() << " contracts x "
            << yelt.trials() << " trials in " << format_seconds(result.seconds) << "\n";

  const warehouse::RiskCube cube(portfolio, result);
  std::cout << "warehouse: " << cube.stats().rollup_cells
            << " pre-computed roll-up cells in "
            << format_seconds(cube.stats().precompute_seconds) << "\n\n";

  // Slice 1: tail by peril.
  {
    ReportTable table({"peril", "contracts", "mean loss", "TVaR99", "PML250"});
    for (int p = 0; p < kPerilCount; ++p) {
      warehouse::CubeQuery q;
      q.peril = static_cast<Peril>(p);
      if (const auto* cell = cube.query(q)) {
        table.add_row({to_string(*q.peril), std::to_string(cell->contracts),
                       format_count(cell->summary.mean_annual_loss),
                       format_count(cell->summary.tvar_99),
                       format_count(cell->summary.pml_250)});
      }
    }
    std::cout << "tail by peril\n";
    table.print(std::cout);
  }

  // Slice 2: tail by region.
  {
    ReportTable table({"region", "contracts", "mean loss", "TVaR99"});
    for (int r = 0; r < kRegionCount; ++r) {
      warehouse::CubeQuery q;
      q.region = static_cast<Region>(r);
      if (const auto* cell = cube.query(q)) {
        table.add_row({to_string(*q.region), std::to_string(cell->contracts),
                       format_count(cell->summary.mean_annual_loss),
                       format_count(cell->summary.tvar_99)});
      }
    }
    std::cout << "\ntail by region\n";
    table.print(std::cout);
  }

  // Slice 3: the CRO's concentration report — worst full cells by tail.
  {
    const auto top = cube.top_concentrations(5);
    ReportTable table({"peril / region / lob", "contracts", "TVaR99"});
    for (const auto& ranked : top) {
      table.add_row({std::string(to_string(*ranked.coordinates.peril)) + " / " +
                         to_string(*ranked.coordinates.region) + " / " +
                         to_string(*ranked.coordinates.lob),
                     std::to_string(ranked.cell->contracts),
                     format_count(ranked.cell->summary.tvar_99)});
    }
    std::cout << "\ntop tail concentrations\n";
    table.print(std::cout);
  }

  // The grand total and the diversification story.
  const auto& total = cube.total();
  Money standalone_sum = 0.0;
  for (int p = 0; p < kPerilCount; ++p) {
    warehouse::CubeQuery q;
    q.peril = static_cast<Peril>(p);
    if (const auto* cell = cube.query(q)) {
      standalone_sum += cell->summary.tvar_99;
    }
  }
  std::cout << "\nportfolio TVaR99 " << format_count(total.summary.tvar_99)
            << " vs sum of standalone peril TVaR99 " << format_count(standalone_sum)
            << " -> diversification benefit "
            << format_count(standalone_sum - total.summary.tvar_99) << "\n";
  return 0;
}
