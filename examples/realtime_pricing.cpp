// Real-time pricing desk: quote several candidate layer structures for one
// contract against the shared 1M-trial YELT — the workflow the paper's
// "25 seconds ... can therefore support real-time pricing" enables.
//
// Build & run:  ./build/example_realtime_pricing [trials]
#include <cstdlib>
#include <iostream>

#include "core/pricer.hpp"
#include "util/format.hpp"
#include "util/report.hpp"

using namespace riskan;

int main(int argc, char** argv) {
  const TrialId trials =
      argc > 1 ? static_cast<TrialId>(std::strtoul(argv[1], nullptr, 10)) : 200'000;

  // The cedent's book: one contract modelled over a 50k-event catalogue.
  finance::PortfolioGenConfig book;
  book.contracts = 1;
  book.catalog_events = 50'000;
  book.elt_rows = 5'000;
  const auto portfolio = finance::generate_portfolio(book);
  const auto& contract = portfolio.contract(0);

  data::YeltGenConfig lens;
  lens.trials = trials;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);
  std::cout << "pre-simulated YELT: " << yelt.trials() << " trials ("
            << format_bytes(static_cast<double>(yelt.byte_size())) << ")\n\n";

  core::EngineConfig engine;
  engine.backend = core::Backend::Threaded;
  const core::RealTimePricer pricer(yelt, engine);

  // The broker asks for three structures: a working layer, a middle layer,
  // and a cat layer high on the curve.
  const auto base = contract.layers()[0].terms;
  struct Structure {
    const char* name;
    double attach_mult;
    double limit_mult;
  };
  const Structure structures[] = {
      {"working layer (low attach)", 0.5, 1.0},
      {"middle layer", 2.0, 2.0},
      {"cat layer (high attach)", 6.0, 4.0},
  };

  ReportTable table({"structure", "EL", "sigma", "TVaR99", "premium", "RoL",
                     "quote time"});
  for (const auto& s : structures) {
    finance::Layer layer;
    layer.id = 0;
    layer.terms = base;
    layer.terms.occ_retention = base.occ_retention * s.attach_mult;
    layer.terms.occ_limit = base.occ_limit * s.limit_mult;
    layer.terms.agg_limit = layer.terms.occ_limit * 2.0;

    const auto quote = pricer.price(contract, layer);
    table.add_row({s.name, format_count(quote.loss_stats.expected_loss),
                   format_count(quote.loss_stats.loss_stdev),
                   format_count(quote.loss_stats.tvar_99),
                   format_count(quote.technical_premium),
                   format_fixed(quote.rate_on_line * 100.0, 1) + "%",
                   format_seconds(quote.seconds)});
  }
  table.print(std::cout);

  std::cout << "\nhigher layers carry lower expected loss but fatter relative "
               "tails — the premium ordering above is the sanity check every "
               "pricing desk applies.\n";
  return 0;
}
