// Scenario sweep: price an S-point re-strike of a layer in one pass.
//
// The pricing question every renewal asks: how do AAL and the tail metrics
// move as a layer's attachment slides? Answering it naively costs one full
// aggregate analysis per candidate attachment. The scenario engine
// (src/scenario) answers all S candidates — plus a demand-surge stress and
// a post-event revision — with ONE streamed YELT pass: the planner reuses
// the base book's event→row resolutions for every scenario, and the
// executor samples each occurrence's loss once and serves all S slot
// variants.
//
// Build & run:  ./build/example_scenario_sweep
#include <iostream>

#include "core/aggregate_engine.hpp"
#include "scenario/sweep.hpp"
#include "util/format.hpp"
#include "util/report.hpp"

using namespace riskan;

int main() {
  finance::PortfolioGenConfig book;
  book.contracts = 16;
  book.catalog_events = 10'000;
  book.elt_rows = 1'000;
  book.layers_per_contract = 4;
  const auto portfolio = finance::generate_portfolio(book);

  data::YeltGenConfig lens;
  lens.trials = 50'000;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);

  // A 16-point sweep: 12 attachment strikes on contract 0's first layer,
  // two demand-surge stresses, an exclusion mask, a post-event revision.
  const auto& struck_layer = portfolio.contract(0).layers()[0];
  std::vector<scenario::ScenarioSpec> specs;
  for (int i = 0; i < 12; ++i) {
    scenario::ScenarioSpec spec;
    const double shift = 0.70 + 0.05 * i;  // 0.70x .. 1.25x of base attachment
    spec.name = "attach " + format_fixed(shift, 2) + "x";
    scenario::TargetedOverride o;
    o.contract = portfolio.contract(0).id();
    o.layer = struck_layer.id;
    o.override.occ_retention = struck_layer.terms.occ_retention * shift;
    spec.overrides.push_back(o);
    specs.push_back(std::move(spec));
  }
  for (const double surge : {1.15, 1.30}) {
    scenario::ScenarioSpec spec;
    spec.name = "surge " + format_fixed(surge, 2) + "x";
    spec.loss_scale = surge;
    specs.push_back(std::move(spec));
  }
  {
    scenario::ScenarioSpec spec;
    spec.name = "exclude 100-149";
    for (EventId e = 100; e < 150; ++e) {
      spec.excluded_events.push_back(e);
    }
    specs.push_back(std::move(spec));
  }
  {
    // Condition on an event that is actually in the book's footprint.
    const EventId occurred = portfolio.contract(0).elt().event_ids()[0];
    scenario::ScenarioSpec spec;
    spec.name = "event " + std::to_string(occurred) + " occurred";
    spec.conditioning = scenario::PostEventConditioning{occurred, 1.1};
    specs.push_back(std::move(spec));
  }

  core::EngineConfig engine;
  engine.keep_contract_ylts = false;
  const auto sweep = scenario::run_scenario_sweep(portfolio, yelt, specs, engine);

  std::cout << specs.size() << "-scenario sweep over " << yelt.trials() << " trials, "
            << portfolio.size() << " contracts x "
            << portfolio.contract(0).layers().size() << " layers, in "
            << format_seconds(sweep.seconds) << " total (one streamed pass)\n\n";
  sweep.report.print(std::cout);

  std::cout << "\nplanner dedupe: " << sweep.plan.contracts_resolved
            << " contract resolutions served " << sweep.plan.scenarios << " scenarios ("
            << sweep.plan.resolutions_avoided << " re-resolutions avoided), "
            << sweep.plan.distinct_masks << " mask column(s) for "
            << sweep.plan.mask_references << " mask reference(s), "
            << sweep.plan.slots << " slots in " << sweep.plan.gather_groups
            << " shared-gather groups\n";
  return 0;
}
