// Stage 3 end to end: integrate the catastrophe YLT with investment,
// interest-rate, market-cycle, counterparty, operational and reserve risks
// through a Gaussian copula, and report the enterprise view a regulator or
// rating agency receives.
//
// Build & run:  ./build/example_dfa_enterprise
#include <iostream>

#include "core/aggregate_engine.hpp"
#include "dfa/dfa_engine.hpp"
#include "util/format.hpp"
#include "util/report.hpp"

using namespace riskan;

int main() {
  // Stage 2 first: the cat YLT.
  finance::PortfolioGenConfig book;
  book.contracts = 40;
  book.catalog_events = 8'000;
  book.elt_rows = 400;
  const auto portfolio = finance::generate_portfolio(book);
  data::YeltGenConfig lens;
  lens.trials = 50'000;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);

  core::EngineConfig engine;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  const auto stage2 = core::run_aggregate_analysis(portfolio, yelt, engine);
  std::cout << "stage 2 cat YLT: " << stage2.portfolio_ylt.trials() << " trials, mean "
            << format_count(stage2.portfolio_ylt.mean()) << "\n\n";

  // Stage 3 at two dependence levels.
  for (const double rho : {0.0, 0.35}) {
    dfa::DfaConfig config;
    config.correlation = rho;
    dfa::DfaEngine dfa_engine(dfa::standard_risk_sources(7), config);
    const auto result = dfa_engine.run(stage2.portfolio_ylt);

    std::cout << "=== copula correlation rho = " << format_fixed(rho, 2) << " ===\n";
    ReportTable table({"risk", "mean", "VaR99.6 (1-in-250)", "TVaR99"});
    table.add_row({"catastrophe", format_count(result.cat_summary.mean_annual_loss),
                   format_count(result.cat_summary.var_99_6),
                   format_count(result.cat_summary.tvar_99)});
    for (std::size_t s = 0; s < result.source_names.size(); ++s) {
      const auto& summary = result.source_summaries[s];
      table.add_row({result.source_names[s], format_count(summary.mean_annual_loss),
                     format_count(summary.var_99_6), format_count(summary.tvar_99)});
    }
    table.add_row({"ENTERPRISE", format_count(result.enterprise_summary.mean_annual_loss),
                   format_count(result.enterprise_summary.var_99_6),
                   format_count(result.enterprise_summary.tvar_99)});
    table.print(std::cout);
    std::cout << "economic capital " << format_count(result.economic_capital)
              << ", diversification benefit "
              << format_count(result.diversification_benefit) << " (in "
              << format_seconds(result.seconds) << ")\n\n";
  }

  std::cout << "raising the copula correlation fattens the enterprise tail and "
               "erodes diversification — the dependence sensitivity every DFA "
               "report carries.\n";
  return 0;
}
