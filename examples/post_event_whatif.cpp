// Post-event what-if desk (paper reference [2], "Rapid Post-Event
// Catastrophe Modelling"): a major event has just occurred — in seconds,
// report its impact on the book, rank the realistic disaster scenarios,
// then revise the *full annual distribution* with the scenario engine:
// intensity-scaled conditioning scenarios (src/scenario) answer "what do
// this year's metrics look like given the event happened, across the
// estimate revisions", all riding one streamed YELT pass. Bootstrap CIs
// and a multi-year solvency projection run off the same sweep.
//
// Build & run:  ./build/example_post_event_whatif
#include <iostream>

#include "core/aggregate_engine.hpp"
#include "core/bootstrap.hpp"
#include "core/post_event.hpp"
#include "dfa/projection.hpp"
#include "scenario/sweep.hpp"
#include "util/format.hpp"
#include "util/report.hpp"
#include "obs/obs.hpp"

using namespace riskan;

int main() {
  finance::PortfolioGenConfig book;
  book.contracts = 120;
  book.catalog_events = 20'000;
  book.elt_rows = 600;
  const auto portfolio = finance::generate_portfolio(book);

  const core::PostEventAnalyzer analyzer(portfolio);

  // 1. Realistic disaster scenarios: worst 5 catalogue events for this book.
  std::vector<EventId> all_events(book.catalog_events);
  for (EventId e = 0; e < book.catalog_events; ++e) {
    all_events[e] = e;
  }
  obs::Timer watch("example.post_event");
  const auto worst = analyzer.worst_events(all_events, 5);
  std::cout << "realistic disaster scenarios (full-catalogue sweep, "
            << format_seconds(watch.seconds()) << ")\n";
  ReportTable rds({"event", "contracts hit", "ground-up", "net to book"});
  for (const auto& w : worst) {
    rds.add_row({std::to_string(w.event), std::to_string(w.contracts_hit),
                 format_count(w.portfolio_ground_up), format_count(w.portfolio_net)});
  }
  rds.print(std::cout);

  // 2. One of them just happened (early intensity estimate 20% hot): the
  //    instant O(portfolio) lookup-and-terms answer. The runner-up rather
  //    than the top event: the worst one exhausts its layers at any
  //    intensity, which would make the revision ladder below a flat line.
  const EventId occurred = worst[1].event;
  watch.reset();
  const auto impact = analyzer.analyse(occurred, /*intensity_scale=*/1.2);
  std::cout << "\npost-event impact of event " << occurred << " (computed in "
            << format_seconds(watch.seconds()) << ")\n"
            << "  contracts hit      : " << impact.contracts_hit << "\n"
            << "  ground-up loss     : " << format_count(impact.portfolio_ground_up) << "\n"
            << "  net loss to book   : " << format_count(impact.portfolio_net) << "\n"
            << "  layers attaching   : " << impact.layers_attaching << " ("
            << impact.layers_exhausted << " exhausted)\n";

  // 3. The full-distribution revision: condition the year on the event
  //    having occurred, across the intensity-estimate ladder the field
  //    teams will walk over the next days (DEXA'12's "revised repeatedly").
  //    One sweep, one streamed YELT pass, deltas vs the pre-event book.
  data::YeltGenConfig lens;
  lens.trials = 20'000;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);

  std::vector<scenario::ScenarioSpec> specs;
  for (const double intensity : {0.8, 1.0, 1.2}) {
    scenario::ScenarioSpec spec;
    spec.name = "occurred @" + format_fixed(intensity, 1) + "x";
    spec.conditioning = scenario::PostEventConditioning{occurred, intensity};
    specs.push_back(std::move(spec));
  }

  core::EngineConfig engine;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  watch.reset();
  const auto sweep = scenario::run_scenario_sweep(portfolio, yelt, specs, engine);
  std::cout << "\nconditional annual view given event " << occurred << " ("
            << specs.size() << " intensity revisions + base in "
            << format_seconds(sweep.seconds) << ", one YELT pass)\n";
  sweep.report.print(std::cout);

  // 4. How settled are the post-event tail metrics at this trial count?
  //    Bootstrap the conditioned (current-estimate) YLT from the sweep.
  const auto& conditioned_ylt = sweep.scenarios[2].portfolio_ylt;  // 1.2x estimate
  const auto pml_ci = core::bootstrap_pml(conditioned_ylt, 250.0);
  const auto tvar_ci = core::bootstrap_tvar(conditioned_ylt, 0.99);
  std::cout << "\npost-event tail-metric uncertainty at " << yelt.trials()
            << " trials (90% CIs)\n"
            << "  PML 250y : " << format_count(pml_ci.point) << "  ["
            << format_count(pml_ci.lo) << ", " << format_count(pml_ci.hi) << "]\n"
            << "  TVaR 99  : " << format_count(tvar_ci.point) << "  ["
            << format_count(tvar_ci.lo) << ", " << format_count(tvar_ci.hi) << "]\n";

  // 5. Multi-year solvency projection with the post-event book.
  dfa::ProjectionConfig proj;
  proj.paths = 5'000;
  proj.horizon_years = 5;
  proj.initial_capital = 1.0e9;
  // Calibrate the cat book against the projection balance sheet.
  auto cat = conditioned_ylt;
  cat *= 60e6 / cat.mean();
  dfa::MultiYearProjection projection(dfa::standard_risk_sources(11), proj);
  const auto path = projection.run(cat);

  std::cout << "\n5-year solvency projection (" << proj.paths << " paths)\n";
  ReportTable solvency({"year", "P(ruin by year)", "capital p5", "median", "p95"});
  for (int y = 0; y < proj.horizon_years; ++y) {
    solvency.add_row({std::to_string(y + 1),
                      format_fixed(path.ruin_probability_by_year[y] * 100.0, 2) + "%",
                      format_count(path.capital_quantiles[y][0]),
                      format_count(path.capital_quantiles[y][1]),
                      format_count(path.capital_quantiles[y][2])});
  }
  solvency.print(std::cout);
  std::cout << "overall ruin probability " << format_fixed(path.ruin_probability * 100, 2)
            << "%, mean terminal capital " << format_count(path.mean_terminal_capital)
            << "\n";
  return 0;
}
