// Post-event what-if desk (paper reference [2], "Rapid Post-Event
// Catastrophe Modelling"): a major event has just occurred — in seconds,
// report its impact on the book, rank the realistic disaster scenarios,
// quantify how settled the tail metrics are (bootstrap), and project
// multi-year solvency (DFA extension).
//
// Build & run:  ./build/example_post_event_whatif
#include <iostream>

#include "core/aggregate_engine.hpp"
#include "core/bootstrap.hpp"
#include "core/post_event.hpp"
#include "dfa/projection.hpp"
#include "util/format.hpp"
#include "util/report.hpp"
#include "util/stopwatch.hpp"

using namespace riskan;

int main() {
  finance::PortfolioGenConfig book;
  book.contracts = 120;
  book.catalog_events = 20'000;
  book.elt_rows = 600;
  const auto portfolio = finance::generate_portfolio(book);

  const core::PostEventAnalyzer analyzer(portfolio);

  // 1. An event just happened (early intensity estimate 20% hot).
  const EventId occurred = 4'242;
  Stopwatch watch;
  const auto impact = analyzer.analyse(occurred, /*intensity_scale=*/1.2);
  std::cout << "post-event impact of event " << occurred << " (computed in "
            << format_seconds(watch.seconds()) << ")\n"
            << "  contracts hit      : " << impact.contracts_hit << "\n"
            << "  ground-up loss     : " << format_count(impact.portfolio_ground_up) << "\n"
            << "  net loss to book   : " << format_count(impact.portfolio_net) << "\n"
            << "  layers attaching   : " << impact.layers_attaching << " ("
            << impact.layers_exhausted << " exhausted)\n\n";

  // 2. Realistic disaster scenarios: worst 5 catalogue events for this book.
  std::vector<EventId> all_events(book.catalog_events);
  for (EventId e = 0; e < book.catalog_events; ++e) {
    all_events[e] = e;
  }
  watch.reset();
  const auto worst = analyzer.worst_events(all_events, 5);
  std::cout << "realistic disaster scenarios (full-catalogue sweep, "
            << format_seconds(watch.seconds()) << ")\n";
  ReportTable rds({"event", "contracts hit", "ground-up", "net to book"});
  for (const auto& w : worst) {
    rds.add_row({std::to_string(w.event), std::to_string(w.contracts_hit),
                 format_count(w.portfolio_ground_up), format_count(w.portfolio_net)});
  }
  rds.print(std::cout);

  // 3. How settled are the tail metrics at this trial count?
  data::YeltGenConfig lens;
  lens.trials = 20'000;
  const auto yelt = data::generate_yelt(book.catalog_events, lens);
  core::EngineConfig engine;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  const auto result = core::run_aggregate_analysis(portfolio, yelt, engine);

  const auto pml_ci = core::bootstrap_pml(result.portfolio_ylt, 250.0);
  const auto tvar_ci = core::bootstrap_tvar(result.portfolio_ylt, 0.99);
  std::cout << "\ntail-metric uncertainty at " << yelt.trials() << " trials (90% CIs)\n"
            << "  PML 250y : " << format_count(pml_ci.point) << "  ["
            << format_count(pml_ci.lo) << ", " << format_count(pml_ci.hi) << "]\n"
            << "  TVaR 99  : " << format_count(tvar_ci.point) << "  ["
            << format_count(tvar_ci.lo) << ", " << format_count(tvar_ci.hi) << "]\n";

  // 4. Multi-year solvency projection with the post-event book.
  dfa::ProjectionConfig proj;
  proj.paths = 5'000;
  proj.horizon_years = 5;
  proj.initial_capital = 1.0e9;
  // Calibrate the cat book against the projection balance sheet.
  auto cat = result.portfolio_ylt;
  cat *= 60e6 / cat.mean();
  dfa::MultiYearProjection projection(dfa::standard_risk_sources(11), proj);
  const auto path = projection.run(cat);

  std::cout << "\n5-year solvency projection (" << proj.paths << " paths)\n";
  ReportTable solvency({"year", "P(ruin by year)", "capital p5", "median", "p95"});
  for (int y = 0; y < proj.horizon_years; ++y) {
    solvency.add_row({std::to_string(y + 1),
                      format_fixed(path.ruin_probability_by_year[y] * 100.0, 2) + "%",
                      format_count(path.capital_quantiles[y][0]),
                      format_count(path.capital_quantiles[y][1]),
                      format_count(path.capital_quantiles[y][2])});
  }
  solvency.print(std::cout);
  std::cout << "overall ruin probability " << format_fixed(path.ruin_probability * 100, 2)
            << "%, mean terminal capital " << format_count(path.mean_terminal_capital)
            << "\n";
  return 0;
}
