// Stage 1 end to end: build a stochastic event catalogue and an exposure
// database, run the three catastrophe-model modules (hazard, vulnerability,
// financial) over every event-exposure pair, and write the resulting ELT
// to disk — the file a stage-2 system would ingest.
//
// Build & run:  ./build/example_catmod_to_elt
#include <iostream>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "catmod/yelt_bridge.hpp"
#include "data/serialize.hpp"
#include "util/format.hpp"

using namespace riskan;

int main() {
  // Inputs: 20k stochastic events, 5k exposed sites clustered in cities.
  catmod::CatalogConfig cc;
  cc.events = 20'000;
  const auto catalog = catmod::EventCatalog::generate(cc);

  catmod::ExposureConfig ec;
  ec.sites = 5'000;
  ec.cities = 15;
  const auto exposure = catmod::ExposureDatabase::generate(ec);

  std::cout << "catalogue: " << catalog.size() << " events, total annual rate "
            << format_fixed(catalog.total_annual_rate(), 1) << " events/year\n"
            << "exposure : " << exposure.size() << " sites, TIV "
            << format_count(exposure.total_insured_value()) << "\n\n";

  // The stage-1 pipeline streams exposure per event in parallel.
  catmod::PipelineStats stats;
  const auto elt = catmod::run_cat_model(catalog, exposure, {}, &stats);

  std::cout << "cat model: " << format_count(static_cast<double>(stats.event_exposure_pairs))
            << " event-exposure pairs in " << format_seconds(stats.seconds) << " ("
            << format_rate(static_cast<double>(stats.event_exposure_pairs) / stats.seconds)
            << ")\n"
            << "           " << format_count(static_cast<double>(stats.pairs_with_loss))
            << " pairs produced loss -> " << elt.size() << " ELT rows\n";

  const std::string elt_path = "/tmp/riskan_example.elt";
  data::save_elt(elt, elt_path);
  std::cout << "ELT written to " << elt_path << " ("
            << format_bytes(static_cast<double>(elt.byte_size())) << " columnar)\n";

  // Pre-simulate the YELT from the catalogue's rates — the bridge into
  // stage 2 (every downstream analysis will see these same trial years).
  catmod::CatalogYeltConfig yc;
  yc.trials = 10'000;
  const auto yelt = catmod::simulate_yelt(catalog, yc);
  const std::string yelt_path = "/tmp/riskan_example.yelt";
  data::save_yelt(yelt, yelt_path);
  std::cout << "YELT written to " << yelt_path << ": " << yelt.trials() << " trials, "
            << format_fixed(yelt.mean_events_per_trial(), 1)
            << " occurrences/year on average\n";
  return 0;
}
